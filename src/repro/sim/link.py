"""Output link: a work-conserving server driving a scheduler.

The link is the paper's forwarding engine for one hop: packets arrive
(from sources or an upstream node), join the scheduler's per-class
FIFOs, and are transmitted one at a time at ``capacity`` bytes per time
unit.  By default the link is lossless (unbounded buffers), matching the
paper's stable ECN-regulated operating assumption (Section 3); an
optional packet-count buffer limit plus a drop policy turn it into a
lossy multiplexer for the loss-differentiation extension.

Departed packets are handed to ``target.receive(packet)`` (next hop or
sink) and reported to the attached monitors.

The runtime invariant checker (:mod:`repro.invariants`) attaches to a
link by *replacing bound methods on the instance* (``receive`` and
``_complete_service``), so an unchecked link runs the exact original
code with no hook branches; ``_start_service`` deliberately looks up
``self._complete_service`` at call time so the per-instance override
takes effect.

Busy-period drain kernel
------------------------
With ``drain=True`` (the default) the link fuses service completions --
and the arrivals of *fused feeders* (sources that registered through
:meth:`Link.attach_feeder`) -- into a tight loop instead of bouncing
every one through the event calendar.  Within a busy period departures
are deterministic given the backlog, so the calendar adds no
information; the drain advances a local clock by ``size / capacity``
per packet and calls ``scheduler.select`` directly.

Bit-identity with the evented path is structural, not best-effort:

* A fused feeder keeps scheduling its *real* arrival event exactly as
  an unfused source would, while mirroring that event's ``(time, seq)``
  key in ``next_time`` / ``next_seq`` attributes.  Whenever control is
  in the run loop, the heap contents are therefore *identical* to an
  evented run.
* The drain only processes an event inline when its ``(time, seq)``
  key is the global calendar minimum (and within the active run
  horizon, :attr:`Simulator._run_until`).  A mirrored feeder arrival is
  popped off the heap at that moment and the feeder switches to
  *virtual* mode: subsequent arrivals reserve a sequence number from
  the kernel without pushing an event.  Completions likewise reserve
  their sequence number at select time.
* When any foreign event precedes the next fused one (a monitor tick,
  another link's completion, the horizon), the drain *parks*: every
  virtual feeder pushes its reserved arrival back onto the heap and the
  pending completion is pushed with its reserved key -- restoring the
  exact heap an evented run would have at that point -- and control
  returns to the run loop.

Because sequence numbers are reserved at exactly the points the
evented path would allocate them, the interleaving with *any* external
event stream is reproduced exactly; golden runs and drain-vs-event
property tests (``tests/test_drain_equivalence.py``) pin this down.
The one observable difference is :attr:`Simulator.events_processed`,
which only counts real calendar dispatches.  When invariant-checking
hooks are attached the drain steps aside entirely (see
:meth:`Link._complete_service`).

Chain-fused drain (DAG of coupled servers)
------------------------------------------
A single-link drain still parks whenever the *next hop's* completion
precedes its own, so a chain of saturated links (the Section 6
multi-hop path) bounces through the calendar once per packet per hop.
When this link's target resolves -- directly, or through a
demultiplexer implementing the drain-demux protocol
(``drain_resolve(packet)`` / ``drain_successors()`` /
``drain_guard()``, see :class:`~repro.network.topology.FlowDemux` and
:class:`~repro.network.routed.RouteDemux`) -- to further drain-capable
links, those links are *coupled*: the fused loop keeps one local
``(time, seq)``-keyed heap over every member's pending completion,
every member's fused feeder arrivals, and the pending keys of any
:class:`~repro.traffic.compile.ArrivalCursor` feeding a member, and
repeatedly processes the globally earliest fused event inline.  A
departure whose resolved receiver is another member is enqueued there
directly (opening the downstream busy period inline, reserving its
completion's sequence number exactly where ``receive`` would have
called ``sim.schedule``); any other receiver gets a plain
``receive`` call, whose scheduled events surface as foreign calendar
entries the loop parks on.

The mirror protocol generalizes to members and cursors:

* A member that was already busy when the chain formed has a *real*
  completion event in the calendar; its key is mirrored in
  :attr:`Link._pending_key` (maintained at every point control leaves
  the link) and the event is absorbed -- popped -- only when it is the
  global heap minimum, exactly like a mirrored feeder arrival.
* An :class:`~repro.traffic.compile.ArrivalCursor` mirrors its single
  pending calendar entry the same way; once absorbed, the chain runs
  the cursor's batch-injection loop inline against an *emulated* heap
  minimum (real calendar union the chain's virtual keys), so the batch
  boundaries -- and therefore sequence-number consumption -- are
  bit-identical to an evented run.
* On park, every still-busy member pushes one resumption event with
  its reserved key, every virtual feeder and cursor re-parks, and the
  calendar is restored bit-identical to the evented run's.

Eligibility is strict: members must be lossless (no buffer, no drop
policy), drain-enabled, hook-free, and use the stock
``receive``/``_complete_service`` method bodies.  An invariant checker
attached to *any* link reachable through the walk marks the chain
*blocked*: chain fusion is disabled and every link keeps its
single-link drain paths, which hand packets through plain ``receive``
calls and therefore never bypass another link's hooks
(``tests/test_multihop_drain_equivalence.py`` pins both the fallback
and chain-vs-evented bit-identity).  Fusion also stays off -- purely a
performance choice -- when no member has an inline arrival source
(fused feeder or cursor), since every arrival would then be a foreign
calendar event to park on; the routing decision is cached on the link
(:attr:`Link._chain_fuse`) so non-fusing completions pay one flag
check, and the cache refreshes when a source attaches or routes
change.

Columnar hot path (structure-of-arrays)
---------------------------------------
With ``columnar=True`` (the default) the drain loops above stop
materializing :class:`~repro.sim.packet.Packet` objects for packets
nothing observes.  Fused arrivals enter the scheduler's
:class:`~repro.sim.queues.ClassQueueSet` as flat per-class column
entries ``(arrived_at, size, meta)`` -- ``meta`` being an ``int``
packet id or a ``(packet_id, flow_id, created_at, hop_history)`` tuple
-- and stock schedulers select straight off the maintained
``head_arrivals`` timestamps, so a packet can traverse queueing,
selection, transmission, chain hand-off, and the departure counters as
three scalars that never exist as an object.  A real ``Packet`` is
built (:func:`~repro.sim.queues.materialize_entry`, bit-identical to
the one the evented path would carry) only at an observation boundary:

* a sink that retains packets (``keep_packets``) or any non-``Link``
  receiver (``FlowRecorder``, custom sinks) at departure,
* a monitor tap (monitors force the generic drain loop / object-mode
  chain members, whose selects materialize on pop),
* a drop policy or bounded buffer (columns never form: those links
  fail ``_fast_ok`` and are excluded from chains),
* the invariant checker (attach demotes every column to objects, and
  the hook fallback in :meth:`Link._complete_service` demotes as a
  safety net),
* a hook-overriding scheduler *without* a verified generated drain
  body (bpr/hpd/pad/drr/wfq/adaptive-wtp are non-stock; inside a
  fused chain each runs columnar through its
  :mod:`repro.schedulers.draingen` body when its exact class verified,
  but a subclass, a failed verification, or a single unfused link
  never receives columnar pushes, and
  ``ClassQueueSet.pop``/``head``/``heads`` materialize transparently
  for any residue),
* a park (the pending completion must become a real calendar event
  payload; queued columns stay columnar across parks).

Because the column entries carry exactly the fields the evented path
would have written at the same points -- and every float expression,
mutation order, and sequence-number reservation is kept verbatim --
columnar and object runs are bit-identical in all externally visible
state (``tests/test_drain_equivalence.py`` pins every registered
scheduler, plus mid-run materialization boundaries).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush, heapreplace
from math import inf
from typing import Optional, Protocol, Sequence, TYPE_CHECKING

from ..errors import ConfigurationError, SchedulingError
from .engine import Simulator
from .packet import Packet
from .queues import materialize_entry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..dropping.base import DropPolicy
    from ..schedulers.base import Scheduler

__all__ = ["Link", "PacketSink", "Receiver", "COLUMNAR_DEFAULT"]

#: Default for :class:`Link`'s ``columnar`` flag (the structure-of-arrays
#: hot path; see the module docstring).  Read once per Link constructor,
#: so benchmarks can A/B the object path by flipping the module
#: attribute before building a topology.
COLUMNAR_DEFAULT = True

#: Consumed-prefix length (elements) at which a drain loop compacts a
#: column in place; mirrors ``repro.sim.queues._COL_COMPACT``.
_COL_COMPACT = 3 * 1024


class Receiver(Protocol):
    """Anything that can accept a departed packet (next hop, sink...)."""

    def receive(self, packet: Packet) -> None:  # pragma: no cover - protocol
        ...


class PacketSink:
    """Terminal receiver: counts packets and optionally keeps them."""

    def __init__(self, keep_packets: bool = False) -> None:
        self.received = 0
        self.keep_packets = keep_packets
        self.packets: list[Packet] = []

    def receive(self, packet: Packet) -> None:
        self.received += 1
        if self.keep_packets:
            self.packets.append(packet)


class _ChainLink:
    """Per-member state for one coupled server in a chain drain.

    The ``pend_*`` scalars / ``t_c`` / ``s_c`` / ``virtual`` describe
    the member's in-flight completion *within the current drain entry*:
    the packet in service (as columnar scalars -- ``pend_meta`` may be
    a real :class:`Packet` or an unmaterialized meta, see
    :mod:`repro.sim.queues`), its reserved ``(time, seq)`` heap key,
    and whether that key is virtual (reserved inline) or mirrors a real
    calendar event that predates the drain entry.  They are reset on
    every entry; ``colmode`` (columnar link + stock scheduler + no
    monitors) is likewise recomputed per entry, so a monitor attached
    between events flips the member to object mode at the next one.
    """

    __slots__ = (
        "link",
        "scheduler",
        "queues",
        "monitors",
        "capacity",
        "direct_target",
        "direct_dcl",
        "resolve",
        "split",
        "flow_rcv",
        "cross_rcv",
        "flow_dcl",
        "cross_dcl",
        "stock",
        "choose",
        "qlist",
        "heads",
        "backlog",
        "nclasses",
        "ccols",
        "cheads",
        "colmode",
        "gsel",
        "genq",
        "pend_meta",
        "pend_cid",
        "pend_arr",
        "pend_size",
        "pend_sstart",
        "t_c",
        "s_c",
        "virtual",
    )

    def __init__(self, link: "Link", stock: bool) -> None:
        scheduler = link.scheduler
        queues = scheduler.queues
        self.link = link
        self.scheduler = scheduler
        self.queues = queues
        self.monitors = link.monitors
        self.capacity = link.capacity
        self.direct_target: Optional[Receiver] = None
        #: Coupled member behind ``direct_target`` (resolved post-walk).
        self.direct_dcl: Optional["_ChainLink"] = None
        self.resolve = None
        #: The demux itself when the target declared a pure
        #: flow-id split (``drain_flow_split``); departures then branch
        #: inline on ``packet.flow_id`` instead of calling ``resolve``.
        self.split = None
        self.flow_rcv: Optional[Receiver] = None
        self.cross_rcv: Optional[Receiver] = None
        self.flow_dcl: Optional["_ChainLink"] = None
        self.cross_dcl: Optional["_ChainLink"] = None
        #: True when the scheduler uses the stock enqueue/select
        #: wrappers with no hook overrides, so their bodies (queue
        #: push/pop, no-op hooks) are inlined verbatim -- the same
        #: criterion and inlining as the link's _fast_ok drain loops.
        self.stock = stock
        self.choose = scheduler.choose_class
        self.qlist = queues.queues
        self.heads = queues.head_arrivals
        self.backlog = queues.bytes_backlog
        self.nclasses = queues.num_classes
        self.ccols = queues.cols
        self.cheads = queues.col_heads
        self.colmode = False
        #: Generated drain body (``repro.schedulers.draingen``): a
        #: fused select -- choose_class + ClassQueueSet.pop + on_select
        #: with identical float ops and mutation order -- for a
        #: *non-stock* scheduler whose generated code has been verified
        #: against the live wrappers and its registered invariant-
        #: checker oracle.  ``None`` keeps the wrapper call.
        self.gsel = None
        #: Generated enqueue-hook body (``on_enqueue`` as a function of
        #: columnar scalars) for schedulers that tag packets at arrival
        #: (SCFQ); called after every columnar push into this member.
        self.genq = None
        #: In-service representation (None == idle): real Packet, int
        #: packet id, or (pid, flow_id, created_at, hop_history) tuple.
        self.pend_meta = None
        self.pend_cid = 0
        self.pend_arr = 0.0
        self.pend_size = 0.0
        self.pend_sstart = 0.0
        self.t_c = 0.0
        self.s_c = 0
        self.virtual = False


class _Chain:
    """Validated snapshot of the drain-couplable graph below a link.

    Rebuilt lazily whenever :meth:`valid` fails; the guard list makes
    revalidation cheap (a handful of identity/attribute checks per
    drain entry) while still catching every event that can change the
    chain shape: target rewiring, scheduler replacement, invariant
    checker attach/detach, drain-flag flips, demux rebinding, and new
    routes in a :class:`~repro.network.routed.RoutedNetwork`.
    """

    __slots__ = ("members", "coupled", "blocked", "sources", "guards")

    def __init__(
        self,
        members: list[_ChainLink],
        coupled: Optional[dict],
        blocked: bool,
        sources: bool,
        guards: list,
    ) -> None:
        self.members = members
        #: id(link) -> _ChainLink for every member, or None when the
        #: chain is this link alone (no fusion possible).
        self.coupled = coupled
        #: True when an invariant checker is attached somewhere in the
        #: couplable graph: chain fusion is disabled (the entry link
        #: keeps its single-link paths, which never bypass another
        #: link's hooks).
        self.blocked = blocked
        #: True when some member had fused feeders or an arrival cursor
        #: at build time.  Without inline arrival sources every arrival
        #: is a foreign calendar event, so a chain drain would park
        #: once per arrival and its setup would dominate; the entry
        #: then keeps the cheap single-link drain paths.  (A source
        #: attached later clears the link's chain cache, refreshing
        #: this.)
        self.sources = sources
        self.guards = guards

    def valid(self) -> bool:
        for g in self.guards:
            if g.__class__ is tuple:
                L = g[1]
                if g[0] == 0:
                    # Member guard: same target/scheduler, still
                    # drain-enabled and hook-free.
                    if (
                        L.target is not g[2]
                        or L.scheduler is not g[3]
                        or not L.drain
                        or "_complete_service" in L.__dict__
                        or "receive" in L.__dict__
                        or "select" in L.scheduler.__dict__
                    ):
                        return False
                else:
                    # Blocked guard: the chain stays blocked only while
                    # the checker hooks remain attached.
                    if not (
                        "_complete_service" in L.__dict__
                        or "receive" in L.__dict__
                        or "select" in L.scheduler.__dict__
                    ):
                        return False
            elif not g():
                # Demux guard closure (drain_guard protocol).
                return False
        return True


def _materialize_pending(cl: _ChainLink, now: float) -> Packet:
    """Real, fully-stamped Packet for a member's *departing* columnar
    entry -- the observation boundary is crossed at departure time, so
    the object carries exactly the stamps the evented path would have
    written by this point."""
    packet = materialize_entry(
        cl.pend_cid, cl.pend_arr, cl.pend_size, cl.pend_meta
    )
    sstart = cl.pend_sstart
    packet.service_start = sstart
    packet.departed_at = now
    packet.hop_delays.append(sstart - cl.pend_arr)
    return packet


def _chain_select(cl: _ChainLink, now: float, sim):
    """Start the next service at a member and return its fused-heap
    item, reserving the completion's sequence number exactly where the
    evented path would have called ``sim.schedule``.

    Stock members select inline off the hybrid deque+column FIFO
    (identical float ops and mutation order to
    ``ClassQueueSet.pop``); a columnar head stays unmaterialized in
    ``pend_meta`` only in colmode -- an observed (monitored) stock
    member materializes on pop, like the wrapper would.  NOTE: the body
    is duplicated inline in ``_chain_complete`` (the per-departure hot
    path); keep the two in sync.
    """
    if cl.stock:
        cid = cl.choose(now)
        queue = cl.qlist[cid]
        if queue:
            nxt = queue.popleft()
            size = nxt.size
            if queue:
                cl.backlog[cid] -= size
                cl.heads[cid] = queue[0].arrived_at
            else:
                col = cl.ccols[cid]
                h = cl.cheads[cid]
                if h < len(col):
                    cl.backlog[cid] -= size
                    cl.heads[cid] = col[h]
                else:
                    cl.backlog[cid] = 0.0
                    cl.heads[cid] = inf
            cl.queues.total_packets -= 1
            meta = nxt
            arr = nxt.arrived_at
        else:
            col = cl.ccols[cid]
            h = cl.cheads[cid]
            arr = col[h]
            size = col[h + 1]
            meta = col[h + 2]
            h += 3
            queues = cl.queues
            queues.col_count -= 1
            if h == len(col):
                col.clear()
                cl.cheads[cid] = 0
                cl.backlog[cid] = 0.0
                cl.heads[cid] = inf
            else:
                if h >= _COL_COMPACT:
                    del col[:h]
                    h = 0
                cl.cheads[cid] = h
                cl.backlog[cid] -= size
                cl.heads[cid] = col[h]
            queues.total_packets -= 1
            if not cl.colmode and type(meta) is not Packet:
                meta = materialize_entry(cid, arr, size, meta)
    elif cl.colmode:
        # Generated drain body: oracle-verified fused
        # choose_class/pop/on_select for a non-stock scheduler
        # (colmode implies gsel is not None -- see _drain_chain).
        meta, cid, arr, size = cl.gsel(now)
    else:
        nxt = cl.scheduler.select(now)
        meta = nxt
        size = nxt.size
        arr = nxt.arrived_at
        cid = nxt.class_id
    s = sim._seq
    sim._seq = s + 1
    cl.pend_meta = meta
    cl.pend_cid = cid
    cl.pend_arr = arr
    cl.pend_size = size
    cl.pend_sstart = now
    t_c = now + size / cl.capacity
    cl.t_c = t_c
    cl.s_c = s
    cl.virtual = True
    return (t_c, s, 0, cl)


def _chain_arrival(cl: _ChainLink, packet: Packet, now: float, sim, fheap) -> None:
    """Object arrival at a coupled member: Link.receive for the
    lossless case.

    The completion's sequence number is reserved exactly where
    ``receive -> _start_service`` would have called ``sim.schedule``.
    Stock scheduler wrappers are inlined verbatim (identical float ops
    and mutation order; only the call layers disappear).  The enqueue
    is hybrid-aware: when the class tail lives in a column the object
    is appended there (as a pre-materialized meta) so FIFO order never
    interleaves.
    """
    L = cl.link
    packet.arrived_at = now
    L.arrivals += 1
    if cl.stock:
        cid = packet.class_id
        if not 0 <= cid < cl.nclasses:
            raise SchedulingError(
                f"packet class {cid} out of range [0, {cl.nclasses})"
            )
        col = cl.ccols[cid]
        if len(col) != cl.cheads[cid]:
            col.extend((now, packet.size, packet))
            cl.queues.col_count += 1
        else:
            queue = cl.qlist[cid]
            if not queue:
                cl.heads[cid] = now
            queue.append(packet)
        cl.backlog[cid] += packet.size
        cl.queues.total_packets += 1
    else:
        cl.scheduler.enqueue(packet, now)
    if not L.busy:
        L.busy = True
        L._busy_since = now
        heappush(fheap, _chain_select(cl, now, sim))


def _chain_arrival_col(
    cl: _ChainLink, cid: int, size: float, meta, now: float, sim, fheap
) -> None:
    """Columnar arrival at a colmode member: no Packet is built."""
    L = cl.link
    L.arrivals += 1
    if not 0 <= cid < cl.nclasses:
        raise SchedulingError(
            f"packet class {cid} out of range [0, {cl.nclasses})"
        )
    if cl.heads[cid] == inf:
        cl.heads[cid] = now
    cl.ccols[cid].extend((now, size, meta))
    queues = cl.queues
    queues.col_count += 1
    cl.backlog[cid] += size
    queues.total_packets += 1
    if cl.genq is not None:
        # on_enqueue equivalent for the generated body (SCFQ tags).
        cl.genq(cid, size, meta, now)
    if not L.busy:
        L.busy = True
        L._busy_since = now
        heappush(fheap, _chain_select(cl, now, sim))


def _chain_complete(cl: _ChainLink, now: float, sim, fheap, coupled):
    """Departure at a coupled member, mirroring the evented path's
    exact ordering: stamps/counters, scheduler hook, monitors,
    hand-off, then the next service's sequence reservation.  The
    departing packet is ``cl.pend_meta`` (+ scalars): a real Packet on
    observed members, an unmaterialized meta in colmode.

    Returns the fused-heap item for the next completion (or ``None``
    when the busy period closes) instead of pushing it, so the drain
    loop can ``heapreplace`` the event it is handling -- one sift
    instead of a pop plus a push."""
    L = cl.link
    meta = cl.pend_meta
    size = cl.pend_size
    sstart = cl.pend_sstart
    L.departures += 1
    L.bytes_sent += size
    if type(meta) is Packet:
        packet = meta
        packet.service_start = sstart
        packet.departed_at = now
        packet.hop_delays.append(sstart - cl.pend_arr)
        if not cl.stock:
            cl.scheduler.on_departure(packet, now)
        if cl.monitors:
            for monitor in cl.monitors:
                monitor.on_departure(packet, now)
        flow = packet.flow_id
    else:
        packet = None
        flow = None if type(meta) is int else meta[1]
    dmx = cl.split
    if dmx is not None:
        # Pure flow-id demux (drain_flow_split): branch inline and keep
        # the demux counters exactly as drain_resolve would have.
        if flow is None:
            dmx.cross_packets += 1
            dcl = cl.cross_dcl
            rcv = cl.cross_rcv
        else:
            dmx.user_packets += 1
            dcl = cl.flow_dcl
            rcv = cl.flow_rcv
    else:
        rcv = cl.direct_target
        if rcv is None:
            if packet is None:
                # Routing inspects the packet: materialize for resolve.
                packet = _materialize_pending(cl, now)
            rcv = cl.resolve(packet)
            dcl = coupled.get(id(rcv))
        else:
            dcl = cl.direct_dcl
    if dcl is not None:
        down = dcl.link
        if packet is None and dcl.colmode:
            # Columnar hop hand-off: extend the meta's hop history with
            # this hop's queueing delay and push the scalars downstream.
            delay = sstart - cl.pend_arr
            if type(meta) is int:
                meta = (meta, None, cl.pend_arr, (delay,))
            else:
                meta = (meta[0], meta[1], meta[2], meta[3] + (delay,))
            down.arrivals += 1
            cid = cl.pend_cid
            if not 0 <= cid < dcl.nclasses:
                raise SchedulingError(
                    f"packet class {cid} out of range [0, {dcl.nclasses})"
                )
            if dcl.heads[cid] == inf:
                dcl.heads[cid] = now
            dcl.ccols[cid].extend((now, size, meta))
            queues = dcl.queues
            queues.col_count += 1
            dcl.backlog[cid] += size
            queues.total_packets += 1
            if dcl.genq is not None:
                dcl.genq(cid, size, meta, now)
            if not down.busy:
                down.busy = True
                down._busy_since = now
                heappush(fheap, _chain_select(dcl, now, sim))
        else:
            if packet is None:
                packet = _materialize_pending(cl, now)
            if dcl.stock and down.busy:
                # Busy downstream with a stock scheduler (the dominant
                # case at high utilization): _chain_arrival's body
                # minus the service start.
                packet.arrived_at = now
                down.arrivals += 1
                cid = packet.class_id
                if not 0 <= cid < dcl.nclasses:
                    raise SchedulingError(
                        f"packet class {cid} out of range [0, {dcl.nclasses})"
                    )
                col = dcl.ccols[cid]
                if len(col) != dcl.cheads[cid]:
                    col.extend((now, packet.size, packet))
                    dcl.queues.col_count += 1
                else:
                    queue = dcl.qlist[cid]
                    if not queue:
                        dcl.heads[cid] = now
                    queue.append(packet)
                dcl.backlog[cid] += packet.size
                dcl.queues.total_packets += 1
            else:
                _chain_arrival(dcl, packet, now, sim, fheap)
    elif packet is not None:
        rcv.receive(packet)
    elif type(rcv) is PacketSink and not rcv.keep_packets:
        # Unobserved terminal sink: the packet's only externally
        # visible trace is the count -- no object is ever built.
        rcv.received += 1
    else:
        rcv.receive(_materialize_pending(cl, now))
    if cl.queues.total_packets:
        # Next service: inline copy of _chain_select (keep in sync),
        # returning the item for the caller's heapreplace.
        if cl.stock:
            cid = cl.choose(now)
            queue = cl.qlist[cid]
            if queue:
                nxt = queue.popleft()
                size = nxt.size
                if queue:
                    cl.backlog[cid] -= size
                    cl.heads[cid] = queue[0].arrived_at
                else:
                    col = cl.ccols[cid]
                    h = cl.cheads[cid]
                    if h < len(col):
                        cl.backlog[cid] -= size
                        cl.heads[cid] = col[h]
                    else:
                        cl.backlog[cid] = 0.0
                        cl.heads[cid] = inf
                cl.queues.total_packets -= 1
                meta = nxt
                arr = nxt.arrived_at
            else:
                col = cl.ccols[cid]
                h = cl.cheads[cid]
                arr = col[h]
                size = col[h + 1]
                meta = col[h + 2]
                h += 3
                queues = cl.queues
                queues.col_count -= 1
                if h == len(col):
                    col.clear()
                    cl.cheads[cid] = 0
                    cl.backlog[cid] = 0.0
                    cl.heads[cid] = inf
                else:
                    if h >= _COL_COMPACT:
                        del col[:h]
                        h = 0
                    cl.cheads[cid] = h
                    cl.backlog[cid] -= size
                    cl.heads[cid] = col[h]
                queues.total_packets -= 1
                if not cl.colmode and type(meta) is not Packet:
                    meta = materialize_entry(cid, arr, size, meta)
        elif cl.colmode:
            # Generated drain body (colmode implies gsel is not None).
            meta, cid, arr, size = cl.gsel(now)
        else:
            nxt = cl.scheduler.select(now)
            meta = nxt
            size = nxt.size
            arr = nxt.arrived_at
            cid = nxt.class_id
        s = sim._seq
        sim._seq = s + 1
        cl.pend_meta = meta
        cl.pend_cid = cid
        cl.pend_arr = arr
        cl.pend_size = size
        cl.pend_sstart = now
        t_c = now + size / cl.capacity
        cl.t_c = t_c
        cl.s_c = s
        cl.virtual = True
        return (t_c, s, 0, cl)
    cl.pend_meta = None
    L.busy = False
    L._in_service = None
    L.busy_time += now - L._busy_since
    return None


class Link:
    """Single-server transmission link with pluggable scheduler."""

    def __init__(
        self,
        sim: Simulator,
        scheduler: "Scheduler",
        capacity: float,
        target: Optional[Receiver] = None,
        name: str = "link",
        buffer_packets: Optional[int] = None,
        drop_policy: Optional["DropPolicy"] = None,
        drain: bool = True,
        columnar: Optional[bool] = None,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"link capacity must be positive: {capacity}")
        if buffer_packets is not None and buffer_packets < 1:
            raise ConfigurationError("buffer_packets must be >= 1 when set")
        if drop_policy is not None and buffer_packets is None:
            raise ConfigurationError("a drop policy requires buffer_packets")
        self.sim = sim
        self.scheduler = scheduler
        self.capacity = capacity
        # Schedulers that need the link rate (e.g. BPR's Eq 9) expose
        # bind_capacity; bind it unless the caller already fixed one.
        bind = getattr(scheduler, "bind_capacity", None)
        if bind is not None and getattr(scheduler, "capacity", None) is None:
            bind(capacity)
        self._target: Receiver = target if target is not None else PacketSink()
        self.name = name
        self.buffer_packets = buffer_packets
        self.drop_policy = drop_policy
        self.monitors: list = []
        #: Busy-period drain kernel A/B switch (see module docstring).
        self.drain = drain
        #: Columnar hot-path A/B switch (module docstring); ``None``
        #: takes the module-level :data:`COLUMNAR_DEFAULT`.
        self.columnar = COLUMNAR_DEFAULT if columnar is None else columnar
        self._feeders: list = []
        self._cursors: list = []
        #: ``(time, seq)`` heap key of the scheduled completion event
        #: for the packet in service, mirrored so a chain drain can
        #: couple this link mid-busy-period and absorb the real event.
        #: Maintained at every point control leaves the link with a
        #: completion scheduled; ``None`` means "unknown", which merely
        #: keeps the link uncoupled until it parks again.
        self._pending_key: Optional[tuple] = None
        self._chain_cache: Optional[_Chain] = None
        #: Simulator topology revision the cached chain was built at.
        #: A moved version forces a rebuild even when ``_chain_fuse``
        #: is False -- upstream-side edits (a new fan-in link, a feeder
        #: attaching to a *member*, a route rewire) are invisible to a
        #: non-fusing entry's own guards.
        self._chain_topo = -1
        #: Cached routing decision: True only when the cached chain can
        #: fuse (coupled members, arrival sources, not blocked).  When
        #: False, completions skip chain validation entirely -- the
        #: cache is cleared (forcing recomputation) whenever a feeder
        #: or cursor attaches, a checker detaches, or routes change.
        self._chain_fuse = False
        # A link qualifies for the specialized drain loops when nothing
        # can observe intermediate per-packet state: a bare PacketSink
        # target, no buffer management, and a scheduler that uses the
        # stock enqueue/select wrappers with no hook overrides (so the
        # wrapper calls can be inlined verbatim).  Monitors are checked
        # at dispatch time since they may be attached later.
        from ..schedulers.base import Scheduler  # deferred: import cycle

        scheduler_cls = type(scheduler)
        self._stock_sched = (
            scheduler_cls.select is Scheduler.select
            and scheduler_cls.enqueue is Scheduler.enqueue
            and scheduler_cls.on_enqueue is Scheduler.on_enqueue
            and scheduler_cls.on_select is Scheduler.on_select
            and scheduler_cls.on_departure is Scheduler.on_departure
        )
        self._fast_ok = (
            drop_policy is None
            and buffer_packets is None
            and type(self._target) is PacketSink
            and self._stock_sched
        )

        self.busy = False
        self._in_service: Optional[Packet] = None
        # Counters (arrivals/departures are per link; drops only with a
        # bounded buffer).
        self.arrivals = 0
        self.departures = 0
        self.drops = 0
        self.drops_per_class = [0] * scheduler.num_classes
        self.bytes_sent = 0.0
        self.busy_time = 0.0
        self._busy_since = 0.0
        # Register on the simulator: the chain walk scans this to find
        # upstream fan-in members, and the version bump invalidates any
        # cached chain the new link might belong to.
        sim._links.append(self)
        sim._topo_version += 1

    @property
    def target(self) -> Receiver:
        """Downstream receiver; rebinding it is a topology edit."""
        return self._target

    @target.setter
    def target(self, value: Receiver) -> None:
        self._target = value
        self._chain_cache = None
        self.sim._topo_version += 1

    # ------------------------------------------------------------------
    def add_monitor(self, monitor) -> None:
        """Attach an object with ``on_departure(packet, now)``."""
        self.monitors.append(monitor)

    def attach_feeder(self, feeder) -> bool:
        """Register a source for inline arrival fusion during drains.

        ``feeder`` must follow the feeder protocol: ``next_time`` /
        ``next_seq`` attributes mirroring its scheduled arrival event's
        heap key (``next_time is None`` when nothing is pending), a
        ``_virtual`` flag owned by the drain, and ``pull()`` /
        ``advance(now)`` / ``park(heap)`` methods
        (:class:`~repro.traffic.trace.TraceSource` and
        :class:`~repro.traffic.source.TrafficSource` implement it).

        Returns ``False`` -- and registers nothing -- when the drain
        kernel is disabled or instrumentation hooks are already
        attached, in which case the source simply runs evented.
        """
        if (
            not self.drain
            or "_complete_service" in self.__dict__
            or "receive" in self.__dict__
            or "select" in self.scheduler.__dict__
        ):
            return False
        self._feeders.append(feeder)
        # A new inline arrival source may flip the cached chain-fusion
        # decision (see _complete_service); recompute on next entry --
        # for every chain this link is a member of, not just our own.
        self._chain_cache = None
        self.sim._topo_version += 1
        return True

    def _attach_cursor(self, cursor) -> None:
        """Register an :class:`~repro.traffic.compile.ArrivalCursor`.

        Called by the cursor itself at ``start()`` for every distinct
        link its compiled streams inject into.  Chain drains absorb the
        cursor's single pending calendar event through the same mirror
        protocol as fused feeders (see module docstring).  Registration
        is unconditional and idempotent -- chain eligibility is
        re-checked at every drain entry, so an ineligible link simply
        never uses the registration.
        """
        for c in self._cursors:
            if c is cursor:
                return
        self._cursors.append(cursor)
        self._chain_cache = None  # refresh the cached fusion decision
        self.sim._topo_version += 1

    def suspend_drain(self) -> None:
        """Permanently detach all fused feeders from this link.

        Safe at any point between events: a fused feeder's pending
        arrival is always a *real* calendar event (the mirror protocol),
        so detaching merely stops the drain from pulling its arrivals
        inline -- the source keeps running evented, bit-identically.
        The invariant checker calls this when attaching hooks.
        """
        self._feeders = []
        self.sim._topo_version += 1

    @property
    def backlog_packets(self) -> int:
        """Queued packets, excluding the one in service."""
        return self.scheduler.queues.total_packets

    @property
    def in_service(self) -> Optional[Packet]:
        """The packet currently being transmitted, if any.

        Exposed read-only for instrumentation (monitors, the invariant
        checker); the link alone mutates the underlying slot.
        """
        return self._in_service

    @property
    def busy_since(self) -> float:
        """Start time of the current busy period (valid while ``busy``)."""
        return self._busy_since

    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Packet arrival at this hop."""
        now = self.sim.now
        packet.arrived_at = now
        self.arrivals += 1
        if self.drop_policy is not None:
            self.drop_policy.on_arrival(packet.class_id, now)
        if (
            self.buffer_packets is not None
            and self.backlog_packets >= self.buffer_packets
        ):
            if not self._drop_for(packet):
                return  # arriving packet itself was dropped
        self.scheduler.enqueue(packet, now)
        if not self.busy:
            self._begin_busy_period(now)
            self._start_service()

    def seed_backlog(self, packets: Sequence[Packet]) -> None:
        """Inject pre-built backlog packets at the current instant.

        The fluid->packet handoff seam of the hybrid engine
        (:mod:`repro.sim.hybrid`): unlike :meth:`receive`, the packets'
        possibly *backdated* ``arrived_at`` stamps are preserved, so the
        seeded queue state carries the age profile implied by the fluid
        delay estimates (head-age schedulers like WTP resume with
        plausible priorities, and the seeds' own measured delays match
        the fluid estimate they were derived from).  Packets must be
        pre-sorted by ``arrived_at`` per class (FIFO) and the call must
        come from inside a scheduled event -- the hybrid controller
        schedules it at the packet segment's start instant.  Service
        begins immediately when the link was idle.

        On a multihop topology *every* link is seeded independently
        with its own carried backlog: the hub's seeds are backdated by
        the fluid per-class delay estimates, upstream hops' by a
        uniform drain-time estimate (their per-class fluid state is
        aggregate-only).  Byte totals per link are exact either way;
        the age profile is the modeled part of the handoff contract
        (see ``DESIGN.md``, "Fluid/packet handoff contract").
        """
        now = self.sim.now
        scheduler = self.scheduler
        for packet in packets:
            self.arrivals += 1
            scheduler.enqueue(packet, packet.arrived_at)
        if not self.busy and scheduler.queues.total_packets:
            self._begin_busy_period(now)
            self._start_service()

    def backlog_snapshot(self, now: Optional[float] = None) -> list[float]:
        """Per-class backlog bytes, including the in-service remnant.

        The packet->fluid handoff read-out: queued bytes per class plus
        the unserved remainder of the packet in service (when the link
        is busy and its pending completion is visible; a columnar
        chain-fused drain may leave at most one in-flight packet
        unaccounted, which the hybrid's guard bands absorb).  Call only
        while the calendar is at rest (between ``run`` invocations).
        The network-wide hybrid controller reads every link's snapshot
        at a packet segment's end and threads each into that link's
        carried backlog for the next fluid segment.
        """
        if now is None:
            now = self.sim.now
        backlogs = list(self.scheduler.queues.bytes_backlog)
        packet = self._in_service
        if self.busy and packet is not None and self._pending_key is not None:
            remaining = (self._pending_key[0] - now) * self.capacity
            backlogs[packet.class_id] += min(max(remaining, 0.0), packet.size)
        return backlogs

    def _drop_for(self, arriving: Packet) -> bool:
        """Make room for ``arriving``; return False if *it* was dropped."""
        if self.drop_policy is None:
            # Plain tail drop of the arriving packet.
            self.drops += 1
            self.drops_per_class[arriving.class_id] += 1
            return False
        victim_class = self.drop_policy.choose_victim(
            self.scheduler.queues, arriving, self.sim.now
        )
        if victim_class is None:
            self.drops += 1
            self.drops_per_class[arriving.class_id] += 1
            self.drop_policy.on_drop(arriving.class_id, self.sim.now)
            return False
        self.scheduler.queues.pop_tail(victim_class)
        self.drops += 1
        self.drops_per_class[victim_class] += 1
        self.drop_policy.on_drop(victim_class, self.sim.now)
        return True

    # ------------------------------------------------------------------
    def _begin_busy_period(self, now: float) -> None:
        self.busy = True
        self._busy_since = now

    def _start_service(self) -> None:
        sim = self.sim
        now = sim.now
        packet = self.scheduler.select(now)
        packet.service_start = now
        self._in_service = packet
        t_c = now + packet.size / self.capacity
        self._pending_key = (t_c, sim._seq)
        sim.schedule(t_c, self._complete_service, packet)

    def _complete_service(self, packet: Packet) -> None:
        """Service completion: drain the busy period, or fall back.

        Entry point for every completion event.  Routes to the evented
        path when the drain kernel is off or per-instance hooks (the
        invariant checker) are attached -- hooks replace this method on
        the *instance*, so reaching the class method with an instance
        override present means we were called from inside a hook
        wrapper and must not drain underneath it.
        """
        scheduler = self.scheduler
        if (
            not self.drain
            or "_complete_service" in self.__dict__
            or "receive" in self.__dict__
            or "select" in scheduler.__dict__
        ):
            if self._feeders:
                self.suspend_drain()
            if scheduler.queues.col_count:
                # Hooks observe whole queues: any columnar residue is
                # an observation boundary (checker attach demotes too;
                # this is the safety net for hooks installed by hand).
                scheduler.queues.demote()
            self._complete_service_evented(packet)
            return
        sim = self.sim
        chain = self._chain_cache
        if chain is None or self._chain_topo != sim._topo_version:
            chain = self._build_chain()
            self._chain_cache = chain
            self._chain_topo = sim._topo_version
            self._chain_fuse = (
                chain.coupled is not None
                and not chain.blocked
                and chain.sources
            )
        if self._chain_fuse:
            # Revalidation (and a rebuild on guard failure) only runs
            # on fusing entries -- once per chain entry, not per
            # completion; a non-fusing link pays a single flag check.
            if not chain.valid():
                chain = self._build_chain()
                self._chain_cache = chain
                self._chain_topo = sim._topo_version
                self._chain_fuse = (
                    chain.coupled is not None
                    and not chain.blocked
                    and chain.sources
                )
            if self._chain_fuse and self._drain_chain(packet, chain):
                return
        if not self._stock_sched and scheduler.queues.col_count:
            # Generated-body columns are only readable by the generated
            # select; any residue crossing into the wrapper-based paths
            # below (whose choose_class sees deques via the live
            # wrappers) is an observation boundary -- demote it.
            scheduler.queues.demote()
        feeders = self._feeders
        if self._fast_ok and feeders and not self.monitors:
            # Specialized loops: nothing observes per-packet state, so
            # the scheduler wrappers and sink dispatch are inlined.
            if len(feeders) == 1:
                self._drain_fused_single(packet, feeders[0])
            else:
                self._drain_fused_multi(packet)
            return
        heap = sim._heap
        until = sim._run_until
        capacity = self.capacity
        queues = scheduler.queues
        monitors = self.monitors
        target = self.target
        select = scheduler.select
        on_departure = scheduler.on_departure
        complete = self._complete_service
        now = sim.now
        while True:
            # -- departure of `packet` at `now` (mirrors the evented path)
            packet.departed_at = now
            packet.hop_delays.append(packet.service_start - packet.arrived_at)
            self.departures += 1
            self.bytes_sent += packet.size
            self._in_service = None
            on_departure(packet, now)
            for monitor in monitors:
                monitor.on_departure(packet, now)
            target.receive(packet)
            if queues.total_packets:
                nxt = select(now)
                nxt.service_start = now
                self._in_service = nxt
                t_c = now + nxt.size / capacity
                # Reserve the completion's sequence number exactly where
                # the evented path would have called sim.schedule.
                s_c = sim._seq
                sim._seq = s_c + 1
            else:
                nxt = None
                self.busy = False
                self.busy_time += now - self._busy_since
            # -- consume fused arrivals that precede the next completion
            while True:
                feeder = None
                t_a = inf
                s_a = 0
                for f in feeders:
                    ft = f.next_time
                    if ft is not None and (
                        ft < t_a or (ft == t_a and f.next_seq < s_a)
                    ):
                        t_a = ft
                        s_a = f.next_seq
                        feeder = f
                if feeder is None or (
                    nxt is not None
                    and (t_c < t_a or (t_c == t_a and s_c < s_a))
                ):
                    # Next fused event is the completion (or nothing).
                    if nxt is None:
                        return  # idle, no fused arrivals pending
                    if t_c > until or (
                        heap
                        and (
                            heap[0][0] < t_c
                            or (heap[0][0] == t_c and heap[0][1] < s_c)
                        )
                    ):
                        for f in feeders:
                            f.park(heap)
                        self._pending_key = (t_c, s_c)
                        heappush(heap, (t_c, s_c, complete, nxt))
                        return
                    now = t_c
                    sim.now = t_c
                    packet = nxt
                    break
                # Next fused event is `feeder`'s arrival at (t_a, s_a).
                if t_a > until:
                    for f in feeders:
                        f.park(heap)
                    if nxt is not None:
                        self._pending_key = (t_c, s_c)
                        heappush(heap, (t_c, s_c, complete, nxt))
                    return
                if heap:
                    head = heap[0]
                    ht = head[0]
                    if ht < t_a or (ht == t_a and head[1] < s_a):
                        for f in feeders:
                            f.park(heap)
                        if nxt is not None:
                            self._pending_key = (t_c, s_c)
                            heappush(heap, (t_c, s_c, complete, nxt))
                        return
                    if ht == t_a and head[1] == s_a:
                        # The arrival's own mirrored calendar event is
                        # the heap minimum: absorb it and go virtual.
                        heappop(heap)
                        feeder._virtual = True
                now = t_a
                sim.now = t_a
                arriving = feeder.pull()
                arriving.arrived_at = t_a
                self.arrivals += 1
                if self.drop_policy is not None:
                    self.drop_policy.on_arrival(arriving.class_id, t_a)
                if (
                    self.buffer_packets is not None
                    and queues.total_packets >= self.buffer_packets
                    and not self._drop_for(arriving)
                ):
                    feeder.advance(t_a)
                    continue
                scheduler.enqueue(arriving, t_a)
                if nxt is None:
                    # Arrival onto an idle link: the drain spans the
                    # idle gap and opens the next busy period inline.
                    self.busy = True
                    self._busy_since = t_a
                    nxt = select(t_a)
                    nxt.service_start = t_a
                    self._in_service = nxt
                    t_c = t_a + nxt.size / capacity
                    s_c = sim._seq
                    sim._seq = s_c + 1
                feeder.advance(t_a)

    def _drain_fused_single(self, packet: Packet, feeder) -> None:
        """Drain loop specialized for exactly one fused feeder.

        Only runs when ``_fast_ok`` holds and no monitors are attached:
        per-packet state is then unobservable between events, so the
        plain scheduler's ``enqueue``/``select`` wrappers (whose hooks
        are the base no-ops) and the bare :class:`PacketSink` dispatch
        are inlined verbatim -- float expressions and mutation order
        are kept identical to the evented path, only the Python call
        layers disappear.

        With ``columnar`` on (and the feeder implementing ``pull_col``,
        which implies a ``flow_id`` attribute), arrivals enter the
        per-class columns as ``(arrived_at, size, meta)`` scalars and
        are selected, transmitted, and counted without ever existing as
        objects; a real :class:`Packet` is materialized only when the
        sink keeps packets (at departure, fully stamped) or at a park
        (the pending completion becomes a calendar event payload).
        Link counters accumulate in locals and are published in the
        ``finally`` block, which runs on every park/idle exit (and on
        errors), so externally-visible state is consistent whenever
        control is back in the run loop.
        """
        sim = self.sim
        heap = sim._heap
        until = sim._run_until
        capacity = self.capacity
        scheduler = self.scheduler
        choose = scheduler.choose_class
        queues = scheduler.queues
        qlist = queues.queues
        cols = queues.cols
        cheads = queues.col_heads
        heads = queues.head_arrivals
        backlog_bytes = queues.bytes_backlog
        num_classes = queues.num_classes
        target = self.target
        keep = target.keep_packets
        kept = target.packets
        complete = self._complete_service
        pull = feeder.pull
        pull_col = (
            getattr(feeder, "pull_col", None) if self.columnar else None
        )
        colmode = pull_col is not None
        fid = feeder.flow_id if colmode else None
        advance = feeder.advance
        now = sim.now
        ft = feeder.next_time
        fs = feeder.next_seq
        total = queues.total_packets
        ccount = queues.col_count
        # Departing-service scalars (the completion being handled) and
        # pending-service scalars (the next reserved completion).
        dmeta = packet
        dcid = packet.class_id
        darr = packet.arrived_at
        dsize = packet.size
        dstart = packet.service_start
        smeta = None
        scid = 0
        sarr = 0.0
        ssize = 0.0
        sstart = 0.0
        arrivals = 0
        departures = 0
        nbytes = 0.0
        received = 0
        try:
            while True:
                # -- departure of the in-service packet at `now`
                departures += 1
                nbytes += dsize
                received += 1
                if keep:
                    if type(dmeta) is Packet:
                        p = dmeta
                    else:
                        p = materialize_entry(dcid, darr, dsize, dmeta)
                    p.service_start = dstart
                    p.departed_at = now
                    p.hop_delays.append(dstart - darr)
                    kept.append(p)
                smeta = None
                if total:
                    # inline Scheduler.select + the hybrid
                    # ClassQueueSet.pop; the packet count is kept in a
                    # local -- publish it before choose_class so
                    # scheduler code sees a consistent queue set.
                    queues.total_packets = total
                    cid = choose(now)
                    queue = qlist[cid]
                    if queue:
                        nxt = queue.popleft()
                        ssize = nxt.size
                        if queue:
                            backlog_bytes[cid] -= ssize
                            heads[cid] = queue[0].arrived_at
                        else:
                            col = cols[cid]
                            h = cheads[cid]
                            if h < len(col):
                                backlog_bytes[cid] -= ssize
                                heads[cid] = col[h]
                            else:
                                backlog_bytes[cid] = 0.0
                                heads[cid] = inf
                        smeta = nxt
                        sarr = nxt.arrived_at
                    else:
                        col = cols[cid]
                        h = cheads[cid]
                        sarr = col[h]
                        ssize = col[h + 1]
                        smeta = col[h + 2]
                        h += 3
                        ccount -= 1
                        if h == len(col):
                            col.clear()
                            cheads[cid] = 0
                            backlog_bytes[cid] = 0.0
                            heads[cid] = inf
                        else:
                            if h >= _COL_COMPACT:
                                del col[:h]
                                h = 0
                            cheads[cid] = h
                            backlog_bytes[cid] -= ssize
                            heads[cid] = col[h]
                    scid = cid
                    total -= 1
                    sstart = now
                    t_c = now + ssize / capacity
                    s_c = sim._seq
                    sim._seq = s_c + 1
                else:
                    self.busy = False
                    self.busy_time += now - self._busy_since
                # -- consume fused arrivals preceding the completion
                while True:
                    if ft is None or (
                        smeta is not None
                        and (t_c < ft or (t_c == ft and s_c < fs))
                    ):
                        if smeta is None:
                            return  # idle, feeder exhausted for now
                        if t_c > until or (
                            heap
                            and (
                                heap[0][0] < t_c
                                or (heap[0][0] == t_c and heap[0][1] < s_c)
                            )
                        ):
                            feeder.park(heap)
                            if type(smeta) is not Packet:
                                smeta = materialize_entry(
                                    scid, sarr, ssize, smeta
                                )
                            smeta.service_start = sstart
                            heappush(heap, (t_c, s_c, complete, smeta))
                            return
                        now = t_c
                        dmeta = smeta
                        dcid = scid
                        darr = sarr
                        dsize = ssize
                        dstart = sstart
                        break
                    if ft > until:
                        feeder.park(heap)
                        if smeta is not None:
                            if type(smeta) is not Packet:
                                smeta = materialize_entry(
                                    scid, sarr, ssize, smeta
                                )
                            smeta.service_start = sstart
                            heappush(heap, (t_c, s_c, complete, smeta))
                        return
                    if heap:
                        head = heap[0]
                        ht = head[0]
                        if ht < ft or (ht == ft and head[1] < fs):
                            feeder.park(heap)
                            if smeta is not None:
                                if type(smeta) is not Packet:
                                    smeta = materialize_entry(
                                        scid, sarr, ssize, smeta
                                    )
                                smeta.service_start = sstart
                                heappush(heap, (t_c, s_c, complete, smeta))
                            return
                        if ht == ft and head[1] == fs:
                            heappop(heap)
                            feeder._virtual = True
                    now = ft
                    idle = smeta is None
                    if colmode:
                        if idle:
                            # The evented path schedules the completion
                            # (inside receive) before the next arrival:
                            # reserve its seq ahead of pull_col's.
                            s_c = sim._seq
                            sim._seq = s_c + 1
                        pid, acid, asize = pull_col(ft)
                        arrivals += 1
                        if not 0 <= acid < num_classes:
                            raise SchedulingError(
                                f"packet class {acid} out of range "
                                f"[0, {num_classes})"
                            )
                        if heads[acid] == inf:
                            heads[acid] = ft
                        cols[acid].extend(
                            (
                                ft,
                                asize,
                                pid if fid is None else (pid, fid, ft, ()),
                            )
                        )
                        ccount += 1
                        backlog_bytes[acid] += asize
                        total += 1
                        if idle:
                            # Arrival onto an idle link: open the next
                            # busy period inline.  The wrapper select
                            # reads the published counts (and its pop
                            # materializes a columnar head -- one
                            # object per busy period, not per packet).
                            self.busy = True
                            self._busy_since = ft
                            queues.total_packets = total
                            queues.col_count = ccount
                            nxt = scheduler.select(ft)
                            total = queues.total_packets
                            ccount = queues.col_count
                            smeta = nxt
                            scid = nxt.class_id
                            sarr = nxt.arrived_at
                            ssize = nxt.size
                            sstart = ft
                            t_c = ft + ssize / capacity
                        ft = feeder.next_time
                        fs = feeder.next_seq
                    else:
                        arriving = pull()
                        arrivals += 1
                        # inline Scheduler.enqueue + ClassQueueSet.push;
                        # pull() guarantees arrived_at == ft already.
                        # Columns are never live in object mode, so the
                        # plain deque push is exact.
                        acid = arriving.class_id
                        if not 0 <= acid < num_classes:
                            raise SchedulingError(
                                f"packet class {acid} out of range "
                                f"[0, {num_classes})"
                            )
                        queue = qlist[acid]
                        if not queue:
                            heads[acid] = ft
                        queue.append(arriving)
                        backlog_bytes[acid] += arriving.size
                        total += 1
                        if idle:
                            self.busy = True
                            self._busy_since = ft
                            queues.total_packets = total
                            nxt = scheduler.select(ft)
                            total = queues.total_packets
                            smeta = nxt
                            scid = nxt.class_id
                            sarr = nxt.arrived_at
                            ssize = nxt.size
                            sstart = ft
                            t_c = ft + ssize / capacity
                            s_c = sim._seq
                            sim._seq = s_c + 1
                        advance(ft)
                        ft = feeder.next_time
                        fs = feeder.next_seq
        finally:
            queues.total_packets = total
            queues.col_count = ccount
            sim.now = now
            if smeta is None:
                self._in_service = None
                self._pending_key = None
            else:
                # Park/exception boundary: the pending completion must
                # be a real calendar payload.
                if type(smeta) is not Packet:
                    smeta = materialize_entry(scid, sarr, ssize, smeta)
                smeta.service_start = sstart
                self._in_service = smeta
                self._pending_key = (t_c, s_c)
            self.arrivals += arrivals
            self.departures += departures
            self.bytes_sent += nbytes
            target.received += received

    def _drain_fused_multi(self, packet: Packet) -> None:
        """Drain loop for several fused feeders (same terms as single).

        The pending feeder arrivals are tracked in a local min-heap of
        ``(time, seq, feeder)`` keyed exactly like the calendar, so the
        next fused arrival is a peek instead of an O(feeders) scan per
        event.  Seq uniqueness means the feeder object itself is never
        compared.  Columnar mode (see :meth:`_drain_fused_single`)
        engages only when *every* feeder implements ``pull_col``.
        """
        sim = self.sim
        heap = sim._heap
        until = sim._run_until
        capacity = self.capacity
        scheduler = self.scheduler
        choose = scheduler.choose_class
        queues = scheduler.queues
        qlist = queues.queues
        cols = queues.cols
        cheads = queues.col_heads
        heads = queues.head_arrivals
        backlog_bytes = queues.bytes_backlog
        num_classes = queues.num_classes
        target = self.target
        keep = target.keep_packets
        kept = target.packets
        feeders = self._feeders
        colmode = self.columnar and all(
            hasattr(f, "pull_col") for f in feeders
        )
        complete = self._complete_service
        now = sim.now
        fheap = [
            (f.next_time, f.next_seq, f)
            for f in feeders
            if f.next_time is not None
        ]
        heapify(fheap)
        total = queues.total_packets
        ccount = queues.col_count
        dmeta = packet
        dcid = packet.class_id
        darr = packet.arrived_at
        dsize = packet.size
        dstart = packet.service_start
        smeta = None
        scid = 0
        sarr = 0.0
        ssize = 0.0
        sstart = 0.0
        arrivals = 0
        departures = 0
        nbytes = 0.0
        received = 0
        try:
            while True:
                # -- departure of the in-service packet at `now`
                departures += 1
                nbytes += dsize
                received += 1
                if keep:
                    if type(dmeta) is Packet:
                        p = dmeta
                    else:
                        p = materialize_entry(dcid, darr, dsize, dmeta)
                    p.service_start = dstart
                    p.departed_at = now
                    p.hop_delays.append(dstart - darr)
                    kept.append(p)
                smeta = None
                if total:
                    queues.total_packets = total
                    cid = choose(now)
                    queue = qlist[cid]
                    if queue:
                        nxt = queue.popleft()
                        ssize = nxt.size
                        if queue:
                            backlog_bytes[cid] -= ssize
                            heads[cid] = queue[0].arrived_at
                        else:
                            col = cols[cid]
                            h = cheads[cid]
                            if h < len(col):
                                backlog_bytes[cid] -= ssize
                                heads[cid] = col[h]
                            else:
                                backlog_bytes[cid] = 0.0
                                heads[cid] = inf
                        smeta = nxt
                        sarr = nxt.arrived_at
                    else:
                        col = cols[cid]
                        h = cheads[cid]
                        sarr = col[h]
                        ssize = col[h + 1]
                        smeta = col[h + 2]
                        h += 3
                        ccount -= 1
                        if h == len(col):
                            col.clear()
                            cheads[cid] = 0
                            backlog_bytes[cid] = 0.0
                            heads[cid] = inf
                        else:
                            if h >= _COL_COMPACT:
                                del col[:h]
                                h = 0
                            cheads[cid] = h
                            backlog_bytes[cid] -= ssize
                            heads[cid] = col[h]
                    scid = cid
                    total -= 1
                    sstart = now
                    t_c = now + ssize / capacity
                    s_c = sim._seq
                    sim._seq = s_c + 1
                else:
                    self.busy = False
                    self.busy_time += now - self._busy_since
                # -- consume fused arrivals preceding the completion
                while True:
                    if fheap:
                        entry = fheap[0]
                        ft = entry[0]
                        fs = entry[1]
                    else:
                        ft = None
                    if ft is None or (
                        smeta is not None
                        and (t_c < ft or (t_c == ft and s_c < fs))
                    ):
                        if smeta is None:
                            return  # idle, all feeders exhausted
                        if t_c > until or (
                            heap
                            and (
                                heap[0][0] < t_c
                                or (heap[0][0] == t_c and heap[0][1] < s_c)
                            )
                        ):
                            for f in feeders:
                                f.park(heap)
                            if type(smeta) is not Packet:
                                smeta = materialize_entry(
                                    scid, sarr, ssize, smeta
                                )
                            smeta.service_start = sstart
                            heappush(heap, (t_c, s_c, complete, smeta))
                            return
                        now = t_c
                        dmeta = smeta
                        dcid = scid
                        darr = sarr
                        dsize = ssize
                        dstart = sstart
                        break
                    if ft > until:
                        for f in feeders:
                            f.park(heap)
                        if smeta is not None:
                            if type(smeta) is not Packet:
                                smeta = materialize_entry(
                                    scid, sarr, ssize, smeta
                                )
                            smeta.service_start = sstart
                            heappush(heap, (t_c, s_c, complete, smeta))
                        return
                    if heap:
                        head = heap[0]
                        ht = head[0]
                        if ht < ft or (ht == ft and head[1] < fs):
                            for f in feeders:
                                f.park(heap)
                            if smeta is not None:
                                if type(smeta) is not Packet:
                                    smeta = materialize_entry(
                                        scid, sarr, ssize, smeta
                                    )
                                smeta.service_start = sstart
                                heappush(heap, (t_c, s_c, complete, smeta))
                            return
                        if ht == ft and head[1] == fs:
                            heappop(heap)
                            entry[2]._virtual = True
                    feeder = entry[2]
                    now = ft
                    idle = smeta is None
                    if colmode:
                        if idle:
                            # Evented order: completion seq (inside
                            # receive) precedes the next arrival's.
                            s_c = sim._seq
                            sim._seq = s_c + 1
                        pid, acid, asize = feeder.pull_col(ft)
                        arrivals += 1
                        if not 0 <= acid < num_classes:
                            raise SchedulingError(
                                f"packet class {acid} out of range "
                                f"[0, {num_classes})"
                            )
                        if heads[acid] == inf:
                            heads[acid] = ft
                        ffid = feeder.flow_id
                        cols[acid].extend(
                            (
                                ft,
                                asize,
                                pid if ffid is None else (pid, ffid, ft, ()),
                            )
                        )
                        ccount += 1
                        backlog_bytes[acid] += asize
                        total += 1
                        if idle:
                            self.busy = True
                            self._busy_since = ft
                            queues.total_packets = total
                            queues.col_count = ccount
                            nxt = scheduler.select(ft)
                            total = queues.total_packets
                            ccount = queues.col_count
                            smeta = nxt
                            scid = nxt.class_id
                            sarr = nxt.arrived_at
                            ssize = nxt.size
                            sstart = ft
                            t_c = ft + ssize / capacity
                    else:
                        arriving = feeder.pull()
                        arrivals += 1
                        acid = arriving.class_id
                        if not 0 <= acid < num_classes:
                            raise SchedulingError(
                                f"packet class {acid} out of range "
                                f"[0, {num_classes})"
                            )
                        queue = qlist[acid]
                        if not queue:
                            heads[acid] = ft
                        queue.append(arriving)
                        backlog_bytes[acid] += arriving.size
                        total += 1
                        if idle:
                            self.busy = True
                            self._busy_since = ft
                            queues.total_packets = total
                            nxt = scheduler.select(ft)
                            total = queues.total_packets
                            smeta = nxt
                            scid = nxt.class_id
                            sarr = nxt.arrived_at
                            ssize = nxt.size
                            sstart = ft
                            t_c = ft + ssize / capacity
                            s_c = sim._seq
                            sim._seq = s_c + 1
                        feeder.advance(ft)
                    nt = feeder.next_time
                    if nt is None:
                        heappop(fheap)
                    else:
                        heapreplace(fheap, (nt, feeder.next_seq, feeder))
        finally:
            queues.total_packets = total
            queues.col_count = ccount
            sim.now = now
            if smeta is None:
                self._in_service = None
                self._pending_key = None
            else:
                if type(smeta) is not Packet:
                    smeta = materialize_entry(scid, sarr, ssize, smeta)
                smeta.service_start = sstart
                self._in_service = smeta
                self._pending_key = (t_c, s_c)
            self.arrivals += arrivals
            self.departures += departures
            self.bytes_sent += nbytes
            target.received += received

    def _complete_service_evented(self, packet: Packet) -> None:
        now = self.sim.now
        packet.departed_at = now
        packet.hop_delays.append(packet.service_start - packet.arrived_at)
        self.departures += 1
        self.bytes_sent += packet.size
        self._in_service = None
        scheduler = self.scheduler
        scheduler.on_departure(packet, now)
        for monitor in self.monitors:
            monitor.on_departure(packet, now)
        self.target.receive(packet)
        if scheduler.queues.total_packets:
            # Inlined _start_service (one departure-to-service handoff
            # per transmitted packet makes this the hottest link path).
            # ``scheduler.select`` and ``self._complete_service`` stay
            # call-time lookups so per-instance overrides (the invariant
            # checker) keep intercepting both.
            nxt = scheduler.select(now)
            nxt.service_start = now
            self._in_service = nxt
            sim = self.sim
            t_c = now + nxt.size / self.capacity
            self._pending_key = (t_c, sim._seq)
            sim.schedule(t_c, self._complete_service, nxt)
        else:
            self.busy = False
            self.busy_time += now - self._busy_since

    # ------------------------------------------------------------------
    def _build_chain(self) -> _Chain:
        """Walk the target graph and snapshot the couplable chain.

        Breadth-first from this link through direct ``Link`` targets
        and demuxes implementing the drain-demux protocol.  Couplable
        successors (drain-enabled, same simulator, lossless, hook-free,
        stock method bodies) become chain members; a hooked successor
        (invariant checker) marks the chain *blocked*; anything else is
        a chain boundary reached via plain ``receive``.  Every object
        examined contributes a guard so :meth:`_Chain.valid` detects
        any change that could alter the walk's outcome.

        After the downstream walk, a fan-in fixpoint scans the
        simulator's link registry for *upstream* members: couplable
        links whose target (or demux successor set) resolves into an
        already-walked member.  Those merge into the same chain, so
        multiple feeder-driven upstream links converging on one server
        -- and routed DAGs converging through ``RouteDemux`` -- drain
        in one fused loop.  A hooked or lossy upstream candidate is
        simply left out (it keeps running evented; its departures reach
        the member as foreign calendar events the drain parks on), and
        upstream edits that no guard can see are caught by the
        simulator's ``_topo_version`` stamp instead.
        """
        from ..schedulers.base import Scheduler  # deferred: import cycle
        from ..schedulers.draingen import generated_drain_pair

        guards: list = []
        members: list[_ChainLink] = []
        by_id: dict[int, _ChainLink] = {}
        blocked = False
        sim = self.sim
        # A lossy entry keeps its single-link drain (which implements
        # the drop path); only lossless links may join a fused chain.
        extend = self.buffer_packets is None and self.drop_policy is None
        pending: list[Link] = [self]
        seen = {id(self)}
        while True:
            while pending:
                L = pending.pop(0)
                tgt = L.target
                scls = type(L.scheduler)
                stock = (
                    scls.select is Scheduler.select
                    and scls.enqueue is Scheduler.enqueue
                    and scls.on_enqueue is Scheduler.on_enqueue
                    and scls.on_select is Scheduler.on_select
                    and scls.on_departure is Scheduler.on_departure
                )
                cl = _ChainLink(L, stock)
                if not stock and L.columnar:
                    # Non-stock scheduler on a columnar link: bind the
                    # generated (oracle-verified) drain body when one
                    # exists, so the member can run colmode.
                    pair = generated_drain_pair(L.scheduler)
                    if pair is not None:
                        cl.gsel, cl.genq = pair
                members.append(cl)
                by_id[id(L)] = cl
                guards.append((0, L, tgt, L.scheduler))
                if isinstance(tgt, Link):
                    cl.direct_target = tgt
                    succs: tuple = (tgt,)
                else:
                    resolve = getattr(tgt, "drain_resolve", None)
                    if resolve is None:
                        cl.direct_target = tgt
                        succs = ()
                    else:
                        cl.resolve = resolve
                        split = getattr(tgt, "drain_flow_split", None)
                        if split is not None:
                            cl.split = tgt
                            cl.flow_rcv, cl.cross_rcv = split()
                        guards.append(tgt.drain_guard())
                        succs = tuple(tgt.drain_successors())
                if not extend:
                    continue
                for r in succs:
                    if not isinstance(r, Link) or id(r) in seen:
                        continue
                    seen.add(id(r))
                    if (
                        "_complete_service" in r.__dict__
                        or "receive" in r.__dict__
                        or "select" in r.scheduler.__dict__
                    ):
                        blocked = True
                        guards.append((1, r))
                        continue
                    if (
                        r.drain
                        and r.sim is sim
                        and r.buffer_packets is None
                        and r.drop_policy is None
                        and type(r).receive is Link.receive
                        and type(r)._complete_service is Link._complete_service
                        and type(r)._start_service is Link._start_service
                    ):
                        pending.append(r)
            if not extend:
                break
            # Fan-in fixpoint: adopt couplable registered links that
            # feed a current member.  Repeats (via the outer loop) until
            # no new upstream link qualifies, so grandparent feeders of
            # a merge point join too.
            grew = False
            for r in sim._links:
                if id(r) in seen:
                    continue
                if (
                    not r.drain
                    or r.buffer_packets is not None
                    or r.drop_policy is not None
                    or type(r).receive is not Link.receive
                    or type(r)._complete_service is not Link._complete_service
                    or type(r)._start_service is not Link._start_service
                    or "_complete_service" in r.__dict__
                    or "receive" in r.__dict__
                    or "select" in r.scheduler.__dict__
                ):
                    continue
                rt = r.target
                if isinstance(rt, Link):
                    succs = (rt,)
                else:
                    ds = getattr(rt, "drain_successors", None)
                    if ds is None:
                        continue
                    succs = tuple(ds())
                if any(id(s) in by_id for s in succs):
                    seen.add(id(r))
                    pending.append(r)
                    grew = True
            if not grew:
                break
        coupled = by_id if len(members) > 1 else None
        sources = any(
            cl.link._feeders or cl.link._cursors for cl in members
        )
        if coupled is not None:
            # Pre-resolve each member's receivers to coupled members so
            # the hot departure path never touches the dict.
            for cl in members:
                if cl.direct_target is not None:
                    cl.direct_dcl = by_id.get(id(cl.direct_target))
                elif cl.split is not None:
                    cl.flow_dcl = by_id.get(id(cl.flow_rcv))
                    cl.cross_dcl = by_id.get(id(cl.cross_rcv))
        return _Chain(members, coupled, blocked, sources, guards)

    def _drain_chain(self, first: Packet, chain: _Chain) -> bool:
        """Fused drain over the whole coupled chain (module docstring).

        Returns ``False`` -- with no state touched -- when a member is
        busy mid-period with an unknown completion key (its event was
        scheduled while the chain shape was different); the entry then
        falls back to the single-link drain paths until that member
        parks with a mirrored key again.
        """
        members = chain.members
        sim = self.sim
        fheap: list = []
        for cl in members[1:]:
            L = cl.link
            if L.busy:
                key = L._pending_key
                p = L._in_service
                if key is None or p is None:
                    return False
                cl.pend_meta = p
                cl.pend_cid = p.class_id
                cl.pend_arr = p.arrived_at
                cl.pend_size = p.size
                cl.pend_sstart = p.service_start
                cl.t_c, cl.s_c = key
                cl.virtual = False
                fheap.append((cl.t_c, cl.s_c, 0, cl))
            else:
                cl.pend_meta = None
                cl.virtual = False
        heap = sim._heap
        until = sim._run_until
        coupled = chain.coupled
        entry = members[0]
        entry.virtual = False
        feeders: list = []
        cursors: list = []
        seen_cursors: set = set()
        for cl in members:
            L = cl.link
            cl.colmode = (
                (cl.stock or cl.gsel is not None)
                and L.columnar
                and not L.monitors
            )
            if not cl.stock and not cl.colmode and cl.queues.col_count:
                # A generated-body member that lost colmode (a monitor
                # appeared) may hold columnar residue its wrapper
                # select cannot read: observation boundary, demote.
                cl.queues.demote()
            for f in L._feeders:
                feeders.append(f)
                ft = f.next_time
                if ft is not None:
                    fheap.append((ft, f.next_seq, 1, (f, cl)))
            for c in L._cursors:
                cid = id(c)
                if cid not in seen_cursors:
                    seen_cursors.add(cid)
                    cursors.append(c)
                    ct = c.next_time
                    if ct is not None:
                        fheap.append((ct, c.next_seq, 2, c))
        heapify(fheap)
        entry.pend_meta = first
        entry.pend_cid = first.class_id
        entry.pend_arr = first.arrived_at
        entry.pend_size = first.size
        entry.pend_sstart = first.service_start
        item = _chain_complete(entry, sim.now, sim, fheap, coupled)
        if item is not None:
            heappush(fheap, item)
        while fheap:
            head = fheap[0]
            t = head[0]
            s = head[1]
            if t > until:
                break
            if heap:
                h = heap[0]
                ht = h[0]
                if ht < t or (ht == t and h[1] < s):
                    break  # foreign calendar event precedes: park
                if ht == t and h[1] == s:
                    # The fused event's own mirrored calendar entry is
                    # the heap minimum: absorb it and go virtual.
                    heappop(heap)
                    kind = head[2]
                    if kind == 0:
                        head[3].virtual = True
                    elif kind == 1:
                        head[3][0]._virtual = True
                    else:
                        head[3]._virtual = True
            sim.now = t
            kind = head[2]
            obj = head[3]
            # Kinds 0/1 leave the handled event at the heap root and
            # heapreplace it with its successor (one sift); kind 2 must
            # pop first because drain_batch reads fheap[0] to find the
            # batch boundary.
            if kind == 0:
                item = _chain_complete(obj, t, sim, fheap, coupled)
                if item is not None:
                    heapreplace(fheap, item)
                else:
                    heappop(fheap)
            elif kind == 1:
                f, cl = obj
                _chain_arrival(cl, f.pull(), t, sim, fheap)
                f.advance(t)
                nt = f.next_time
                if nt is not None:
                    heapreplace(fheap, (nt, f.next_seq, 1, obj))
                else:
                    heappop(fheap)
            else:
                heappop(fheap)
                if obj.drain_batch(t, until, heap, fheap, coupled):
                    heappush(fheap, (obj.next_time, obj.next_seq, 2, obj))
        # Park: restore the exact calendar an evented run would have at
        # this instant.  Never-absorbed (non-virtual) events are still
        # in the heap and must not be re-pushed.
        for f in feeders:
            f.park(heap)
        for c in cursors:
            c.park(heap)
        for cl in members:
            meta = cl.pend_meta
            if meta is not None:
                L = cl.link
                if type(meta) is not Packet:
                    # Park boundary: the pending completion becomes a
                    # real calendar payload / visible in-service packet.
                    meta = materialize_entry(
                        cl.pend_cid, cl.pend_arr, cl.pend_size, meta
                    )
                    cl.pend_meta = meta
                # service_start is deferred to pend_sstart while fused;
                # the evented completion reads it off the packet.
                meta.service_start = cl.pend_sstart
                L._in_service = meta
                L._pending_key = (cl.t_c, cl.s_c)
                if cl.virtual:
                    cl.virtual = False
                    heappush(
                        heap, (cl.t_c, cl.s_c, L._complete_service, meta)
                    )
        return True

    # ------------------------------------------------------------------
    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of time the server was transmitting.

        If the link is busy at the end of the run the open busy period
        is counted up to ``now`` -- clamped to ``horizon`` when one is
        given, so a service still in progress at the cutoff contributes
        only its pre-horizon portion.  ``horizon`` defaults to the
        current clock.
        """
        total = self.busy_time
        if self.busy:
            end = (
                self.sim.now
                if horizon is None
                else min(self.sim.now, horizon)
            )
            if end > self._busy_since:
                total += end - self._busy_since
        span = horizon if horizon is not None else self.sim.now
        return total / span if span > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Link({self.name!r}, capacity={self.capacity}, "
            f"scheduler={self.scheduler.name})"
        )
