"""Packet model.

One mutable object per packet; hot-path fields live in ``__slots__``.
``class_id`` is the 0-based class index (paper class 1 == index 0, the
*lowest* class).  Per-hop timestamps are rewritten at every queue so
schedulers always see the waiting time at the *current* hop, while
``hop_delays`` accumulates the queueing delay at each traversed hop for
end-to-end analysis (Section 6 of the paper).
"""

from __future__ import annotations

from typing import Optional

__all__ = ["Packet"]


class Packet:
    """A single packet travelling through the simulated network."""

    __slots__ = (
        "packet_id",
        "class_id",
        "size",
        "created_at",
        "arrived_at",
        "service_start",
        "departed_at",
        "flow_id",
        "hop_delays",
        "_tqd",
    )

    def __init__(
        self,
        packet_id: int,
        class_id: int,
        size: float,
        created_at: float,
        flow_id: Optional[int] = None,
    ) -> None:
        self.packet_id = packet_id
        self.class_id = class_id
        self.size = size
        self.created_at = created_at
        #: Arrival time at the current queue (rewritten per hop).
        self.arrived_at = created_at
        self.service_start = -1.0
        self.departed_at = -1.0
        self.flow_id = flow_id
        # ``hop_delays`` (queueing delay at each traversed hop, in
        # order) is allocated lazily on first access -- most packets in
        # a large run are never inspected per hop, so the empty list
        # (and its backing storage) would be pure churn.

    def __getattr__(self, name: str):
        # Only unset slots reach here.  ``hop_delays`` springs into
        # existence on first touch; ``_tqd`` (the cached
        # ``total_queueing_delay``) defaults to "no cache".
        if name == "hop_delays":
            delays: list[float] = []
            self.hop_delays = delays
            return delays
        if name == "_tqd":
            return None
        raise AttributeError(name)

    # ------------------------------------------------------------------
    @property
    def queueing_delay(self) -> float:
        """Waiting time at the most recent hop (arrival -> service start)."""
        return self.service_start - self.arrived_at

    @property
    def total_queueing_delay(self) -> float:
        """Sum of queueing delays over all hops traversed so far.

        Cached keyed on ``len(hop_delays)``: hops only ever append, so
        a matching length means the stored sum is current.
        """
        delays = self.hop_delays
        n = len(delays)
        cached = self._tqd
        if cached is not None and cached[0] == n:
            return cached[1]
        total = sum(delays)
        self._tqd = (n, total)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Packet(id={self.packet_id}, class={self.class_id + 1}, "
            f"size={self.size}, t0={self.created_at:.6g})"
        )
