"""Measurement instruments attached to links.

Three instruments cover everything the paper's evaluation needs:

* :class:`DelayMonitor` -- long-term per-class queueing-delay averages
  with a warm-up cutoff (Figures 1 and 2).
* :class:`IntervalDelayMonitor` -- per-class average delays in
  consecutive intervals of a fixed monitoring timescale tau
  (Figure 3's R_D distributions and the "microscopic view I" plots).
* :class:`PacketTap` -- raw (departure time, class, delay) samples in a
  time window (the "microscopic view II" per-packet plots).

All delays are *queueing* delays: arrival at the hop to start of
service, the quantity the paper plots throughout.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from .packet import Packet

__all__ = [
    "DelayMonitor",
    "IntervalDelayMonitor",
    "PacketTap",
    "ClassDelayStats",
    "BacklogSampler",
    "ThroughputMonitor",
]


class ClassDelayStats:
    """Streaming summary of one class's queueing delays."""

    __slots__ = ("count", "total", "total_sq", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, delay: float) -> None:
        self.count += 1
        self.total += delay
        self.total_sq += delay * delay
        if delay < self.min:
            self.min = delay
        if delay > self.max:
            self.max = delay

    @property
    def mean(self) -> float:
        """Average delay; NaN when no packet departed yet."""
        return self.total / self.count if self.count else math.nan

    @property
    def variance(self) -> float:
        """Population variance; NaN when fewer than one sample."""
        if not self.count:
            return math.nan
        mean = self.total / self.count
        return max(self.total_sq / self.count - mean * mean, 0.0)


class DelayMonitor:
    """Long-term per-class average queueing delays with warm-up."""

    def __init__(
        self,
        num_classes: int,
        warmup: float = 0.0,
        keep_samples: bool = False,
    ) -> None:
        if num_classes < 1:
            raise ConfigurationError("num_classes must be >= 1")
        if warmup < 0:
            raise ConfigurationError("warmup must be non-negative")
        self.num_classes = num_classes
        self.warmup = warmup
        self.keep_samples = keep_samples
        self.stats = [ClassDelayStats() for _ in range(num_classes)]
        self.samples: list[list[float]] = [[] for _ in range(num_classes)]

    def on_departure(self, packet: Packet, now: float) -> None:
        if now < self.warmup:
            return
        delay = packet.service_start - packet.arrived_at
        self.stats[packet.class_id].add(delay)
        if self.keep_samples:
            self.samples[packet.class_id].append(delay)

    # ------------------------------------------------------------------
    def mean_delay(self, class_id: int) -> float:
        """Long-term average queueing delay of a class (NaN if idle)."""
        return self.stats[class_id].mean

    def mean_delays(self) -> list[float]:
        """Average delay per class, in class order."""
        return [s.mean for s in self.stats]

    def counts(self) -> list[int]:
        """Departed-packet count per class (after warm-up)."""
        return [s.count for s in self.stats]

    def successive_ratios(self) -> list[float]:
        """d_i / d_{i+1} for each successive class pair (paper Figs 1-2)."""
        means = self.mean_delays()
        return [means[i] / means[i + 1] for i in range(self.num_classes - 1)]

    def percentile(self, class_id: int, q: float) -> float:
        """Delay percentile (requires ``keep_samples=True``)."""
        if not self.keep_samples:
            raise ConfigurationError("percentile() needs keep_samples=True")
        data = self.samples[class_id]
        if not data:
            return math.nan
        return float(np.percentile(data, q))

    def jitter(self, class_id: int) -> float:
        """Delay standard deviation of a class (population; NaN if idle).

        Complements the mean-based proportional model: BPR's sawtooth
        shows up as per-class jitter even where its means look fine.
        """
        variance = self.stats[class_id].variance
        return math.sqrt(variance) if not math.isnan(variance) else math.nan


class IntervalDelayMonitor:
    """Per-class delay averages over consecutive intervals of length tau.

    Interval k covers departures in [k*tau, (k+1)*tau).  For each
    finished interval the per-class (sum, count) pairs are stored;
    :meth:`interval_means` exposes them as arrays with NaN for inactive
    classes, which is exactly the input the paper's R_D metric needs.
    """

    def __init__(self, num_classes: int, tau: float, warmup: float = 0.0) -> None:
        if tau <= 0:
            raise ConfigurationError("tau must be positive")
        if warmup < 0:
            raise ConfigurationError("warmup must be non-negative")
        self.num_classes = num_classes
        self.tau = tau
        self.warmup = warmup
        self._current_index: Optional[int] = None
        self._sums = [0.0] * num_classes
        self._counts = [0] * num_classes
        #: One (index, sums, counts) triple per interval with >=1 departure.
        self.intervals: list[tuple[int, list[float], list[int]]] = []

    def on_departure(self, packet: Packet, now: float) -> None:
        if now < self.warmup:
            return
        index = int(now // self.tau)
        if self._current_index is None:
            self._current_index = index
        elif index != self._current_index:
            self._flush()
            self._current_index = index
        delay = packet.service_start - packet.arrived_at
        self._sums[packet.class_id] += delay
        self._counts[packet.class_id] += 1

    def _flush(self) -> None:
        if self._current_index is not None and any(self._counts):
            self.intervals.append(
                (self._current_index, self._sums, self._counts)
            )
            self._sums = [0.0] * self.num_classes
            self._counts = [0] * self.num_classes

    def finalize(self) -> None:
        """Flush the last open interval (call once, at end of run)."""
        self._flush()
        self._current_index = None

    def interval_means(self) -> np.ndarray:
        """(num_intervals, num_classes) array of means, NaN if inactive."""
        rows = []
        for _, sums, counts in self.intervals:
            rows.append(
                [
                    sums[c] / counts[c] if counts[c] else math.nan
                    for c in range(self.num_classes)
                ]
            )
        if not rows:
            return np.empty((0, self.num_classes))
        return np.asarray(rows)


class ThroughputMonitor:
    """Per-class departed bytes in consecutive intervals of length tau.

    The service-rate counterpart of :class:`IntervalDelayMonitor`: shows
    how a scheduler redistributes bandwidth across classes over time
    (e.g. BPR's backlog-proportional rates visibly tracking bursts).
    """

    def __init__(self, num_classes: int, tau: float, warmup: float = 0.0) -> None:
        if tau <= 0:
            raise ConfigurationError("tau must be positive")
        self.num_classes = num_classes
        self.tau = tau
        self.warmup = warmup
        self._current_index: Optional[int] = None
        self._bytes = [0.0] * num_classes
        self.intervals: list[tuple[int, list[float]]] = []

    def on_departure(self, packet: Packet, now: float) -> None:
        if now < self.warmup:
            return
        index = int(now // self.tau)
        if self._current_index is None:
            self._current_index = index
        elif index != self._current_index:
            self._flush()
            self._current_index = index
        self._bytes[packet.class_id] += packet.size

    def _flush(self) -> None:
        if self._current_index is not None and any(self._bytes):
            self.intervals.append((self._current_index, self._bytes))
            self._bytes = [0.0] * self.num_classes

    def finalize(self) -> None:
        """Flush the last open interval (call once, at end of run)."""
        self._flush()
        self._current_index = None

    def rates(self) -> np.ndarray:
        """(num_intervals, num_classes) byte-per-time-unit rates."""
        if not self.intervals:
            return np.empty((0, self.num_classes))
        return np.asarray([b for _, b in self.intervals]) / self.tau


class BacklogSampler:
    """Samples per-class queue backlogs at a fixed period.

    Unlike the departure-driven monitors, this one polls the scheduler's
    queues on the simulator clock, capturing the backlog trajectory the
    BPR analysis (Proposition 1) is stated in terms of.  Attach with
    :meth:`attach`, which schedules the sampling loop.
    """

    def __init__(self, period: float, horizon: float) -> None:
        if period <= 0 or horizon <= 0:
            raise ConfigurationError("period and horizon must be positive")
        self.period = period
        self.horizon = horizon
        self.times: list[float] = []
        #: One row per sample: bytes queued per class.
        self.samples: list[list[float]] = []
        self._link = None
        self._sim = None

    def attach(self, sim, link) -> None:
        """Start sampling ``link``'s scheduler queues on ``sim``."""
        self._sim = sim
        self._link = link
        sim.schedule(sim.now + self.period, self._sample)

    def _sample(self) -> None:
        queues = self._link.scheduler.queues
        self.times.append(self._sim.now)
        self.samples.append(list(queues.bytes_backlog))
        next_time = self._sim.now + self.period
        if next_time <= self.horizon:
            self._sim.schedule(next_time, self._sample)

    def as_array(self) -> np.ndarray:
        """(num_samples, num_classes) backlog matrix."""
        if not self.samples:
            return np.empty((0, 0))
        return np.asarray(self.samples)


class PacketTap:
    """Raw per-packet samples inside a departure-time window."""

    def __init__(
        self,
        num_classes: int,
        start: float = 0.0,
        end: float = math.inf,
    ) -> None:
        if end <= start:
            raise ConfigurationError("tap window must have end > start")
        self.num_classes = num_classes
        self.start = start
        self.end = end
        #: Per class: list of (departure_time, queueing_delay).
        self.samples: list[list[tuple[float, float]]] = [
            [] for _ in range(num_classes)
        ]

    def on_departure(self, packet: Packet, now: float) -> None:
        if self.start <= now < self.end:
            delay = packet.service_start - packet.arrived_at
            self.samples[packet.class_id].append((now, delay))

    def ipdv(self, class_id: int) -> float:
        """Inter-packet delay variation (RFC 3393 flavour): the mean
        absolute delay difference between consecutive departures of the
        class inside the tap window.  NaN with fewer than 2 samples."""
        delays = [d for _, d in self.samples[class_id]]
        if len(delays) < 2:
            return math.nan
        return float(
            np.abs(np.diff(np.asarray(delays))).mean()
        )
