"""Measurement instruments attached to links.

Three instruments cover everything the paper's evaluation needs:

* :class:`DelayMonitor` -- long-term per-class queueing-delay averages
  with a warm-up cutoff (Figures 1 and 2).
* :class:`IntervalDelayMonitor` -- per-class average delays in
  consecutive intervals of a fixed monitoring timescale tau
  (Figure 3's R_D distributions and the "microscopic view I" plots).
* :class:`PacketTap` -- raw (departure time, class, delay) samples in a
  time window (the "microscopic view II" per-packet plots).

All delays are *queueing* delays: arrival at the hop to start of
service, the quantity the paper plots throughout.

Storage discipline: per-departure state updates are streaming scalar
aggregation (constant work, no per-packet allocation); anything that
accumulates a *series* -- kept delay samples, finished intervals, tap
rows -- lands in a preallocated numpy buffer grown by amortized
doubling (:class:`_SampleBuffer`), so post-processing (percentiles,
interval means, IPDV) runs vectorized on contiguous arrays instead of
converting Python lists first.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from .packet import Packet

__all__ = [
    "DelayMonitor",
    "IntervalDelayMonitor",
    "PacketTap",
    "ClassDelayStats",
    "BacklogSampler",
    "ThroughputMonitor",
]


class _SampleBuffer:
    """Preallocated numpy buffer grown by amortized doubling.

    1-D for scalar series (``columns=0``) or 2-D with a fixed row width.
    ``view()`` returns the filled prefix without copying.
    """

    __slots__ = ("data", "size")

    def __init__(
        self,
        columns: int = 0,
        capacity: int = 256,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        shape = (capacity, columns) if columns else capacity
        self.data = np.empty(shape, dtype=dtype)
        self.size = 0

    def append(self, value) -> None:
        """Append one scalar (1-D) or one row (2-D)."""
        size = self.size
        if size == len(self.data):
            self.data = np.concatenate([self.data, np.empty_like(self.data)])
        self.data[size] = value
        self.size = size + 1

    def view(self) -> np.ndarray:
        """The filled prefix (a no-copy view; do not resize while held)."""
        return self.data[: self.size]

    def __len__(self) -> int:
        return self.size


class ClassDelayStats:
    """Streaming summary of one class's queueing delays."""

    __slots__ = ("count", "total", "total_sq", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, delay: float) -> None:
        self.count += 1
        self.total += delay
        self.total_sq += delay * delay
        if delay < self.min:
            self.min = delay
        if delay > self.max:
            self.max = delay

    @property
    def mean(self) -> float:
        """Average delay; NaN when no packet departed yet."""
        return self.total / self.count if self.count else math.nan

    @property
    def variance(self) -> float:
        """Population variance; NaN when fewer than one sample."""
        if not self.count:
            return math.nan
        mean = self.total / self.count
        return max(self.total_sq / self.count - mean * mean, 0.0)


class DelayMonitor:
    """Long-term per-class average queueing delays with warm-up."""

    def __init__(
        self,
        num_classes: int,
        warmup: float = 0.0,
        keep_samples: bool = False,
    ) -> None:
        if num_classes < 1:
            raise ConfigurationError("num_classes must be >= 1")
        if warmup < 0:
            raise ConfigurationError("warmup must be non-negative")
        self.num_classes = num_classes
        self.warmup = warmup
        self.keep_samples = keep_samples
        self.stats = [ClassDelayStats() for _ in range(num_classes)]
        self._samples = [_SampleBuffer() for _ in range(num_classes)]

    def on_departure(self, packet: Packet, now: float) -> None:
        if now < self.warmup:
            return
        delay = packet.service_start - packet.arrived_at
        self.stats[packet.class_id].add(delay)
        if self.keep_samples:
            self._samples[packet.class_id].append(delay)

    # ------------------------------------------------------------------
    @property
    def samples(self) -> list[np.ndarray]:
        """Per class, the kept delay samples as numpy views."""
        return [buf.view() for buf in self._samples]

    def mean_delay(self, class_id: int) -> float:
        """Long-term average queueing delay of a class (NaN if idle)."""
        return self.stats[class_id].mean

    def mean_delays(self) -> list[float]:
        """Average delay per class, in class order."""
        return [s.mean for s in self.stats]

    def counts(self) -> list[int]:
        """Departed-packet count per class (after warm-up)."""
        return [s.count for s in self.stats]

    def successive_ratios(self) -> list[float]:
        """d_i / d_{i+1} for each successive class pair (paper Figs 1-2)."""
        means = self.mean_delays()
        return [means[i] / means[i + 1] for i in range(self.num_classes - 1)]

    def percentile(self, class_id: int, q: float) -> float:
        """Delay percentile (requires ``keep_samples=True``)."""
        if not self.keep_samples:
            raise ConfigurationError("percentile() needs keep_samples=True")
        data = self._samples[class_id].view()
        if not len(data):
            return math.nan
        return float(np.percentile(data, q))

    def jitter(self, class_id: int) -> float:
        """Delay standard deviation of a class (population; NaN if idle).

        Complements the mean-based proportional model: BPR's sawtooth
        shows up as per-class jitter even where its means look fine.
        """
        variance = self.stats[class_id].variance
        return math.sqrt(variance) if not math.isnan(variance) else math.nan


class IntervalDelayMonitor:
    """Per-class delay averages over consecutive intervals of length tau.

    Interval k covers departures in [k*tau, (k+1)*tau).  The open
    interval accumulates streaming per-class (sum, count) scalars;
    each finished interval is flushed as one row into numpy buffers, so
    :meth:`interval_means` is a single vectorized divide instead of a
    per-interval Python loop.
    """

    def __init__(self, num_classes: int, tau: float, warmup: float = 0.0) -> None:
        if tau <= 0:
            raise ConfigurationError("tau must be positive")
        if warmup < 0:
            raise ConfigurationError("warmup must be non-negative")
        self.num_classes = num_classes
        self.tau = tau
        self.warmup = warmup
        self._current_index: Optional[int] = None
        self._sums = [0.0] * num_classes
        self._counts = [0] * num_classes
        self._indices = _SampleBuffer(dtype=np.int64)
        self._interval_sums = _SampleBuffer(columns=num_classes)
        self._interval_counts = _SampleBuffer(columns=num_classes, dtype=np.int64)

    def on_departure(self, packet: Packet, now: float) -> None:
        if now < self.warmup:
            return
        index = int(now // self.tau)
        if self._current_index is None:
            self._current_index = index
        elif index != self._current_index:
            self._flush()
            self._current_index = index
        delay = packet.service_start - packet.arrived_at
        self._sums[packet.class_id] += delay
        self._counts[packet.class_id] += 1

    def _flush(self) -> None:
        if self._current_index is not None and any(self._counts):
            self._indices.append(self._current_index)
            self._interval_sums.append(self._sums)
            self._interval_counts.append(self._counts)
            self._sums = [0.0] * self.num_classes
            self._counts = [0] * self.num_classes

    def finalize(self) -> None:
        """Flush the last open interval (call once, at end of run)."""
        self._flush()
        self._current_index = None

    @property
    def intervals(self) -> list[tuple[int, list[float], list[int]]]:
        """Finished intervals as (index, sums, counts) triples."""
        return [
            (int(index), list(sums), [int(c) for c in counts])
            for index, sums, counts in zip(
                self._indices.view(),
                self._interval_sums.view(),
                self._interval_counts.view(),
            )
        ]

    def interval_indices(self) -> np.ndarray:
        """Indices of the finished intervals (int64 view)."""
        return self._indices.view()

    def interval_means(self) -> np.ndarray:
        """(num_intervals, num_classes) array of means, NaN if inactive."""
        sums = self._interval_sums.view()
        if not len(sums):
            return np.empty((0, self.num_classes))
        counts = self._interval_counts.view()
        means = np.full(sums.shape, math.nan)
        np.divide(sums, counts, out=means, where=counts > 0)
        return means


class ThroughputMonitor:
    """Per-class departed bytes in consecutive intervals of length tau.

    The service-rate counterpart of :class:`IntervalDelayMonitor`: shows
    how a scheduler redistributes bandwidth across classes over time
    (e.g. BPR's backlog-proportional rates visibly tracking bursts).
    """

    def __init__(self, num_classes: int, tau: float, warmup: float = 0.0) -> None:
        if tau <= 0:
            raise ConfigurationError("tau must be positive")
        self.num_classes = num_classes
        self.tau = tau
        self.warmup = warmup
        self._current_index: Optional[int] = None
        self._bytes = [0.0] * num_classes
        self._indices = _SampleBuffer(dtype=np.int64)
        self._interval_bytes = _SampleBuffer(columns=num_classes)

    def on_departure(self, packet: Packet, now: float) -> None:
        if now < self.warmup:
            return
        index = int(now // self.tau)
        if self._current_index is None:
            self._current_index = index
        elif index != self._current_index:
            self._flush()
            self._current_index = index
        self._bytes[packet.class_id] += packet.size

    def _flush(self) -> None:
        if self._current_index is not None and any(self._bytes):
            self._indices.append(self._current_index)
            self._interval_bytes.append(self._bytes)
            self._bytes = [0.0] * self.num_classes

    def finalize(self) -> None:
        """Flush the last open interval (call once, at end of run)."""
        self._flush()
        self._current_index = None

    @property
    def intervals(self) -> list[tuple[int, list[float]]]:
        """Finished intervals as (index, per-class bytes) pairs."""
        return [
            (int(index), list(row))
            for index, row in zip(
                self._indices.view(), self._interval_bytes.view()
            )
        ]

    def rates(self) -> np.ndarray:
        """(num_intervals, num_classes) byte-per-time-unit rates."""
        if not len(self._indices):
            return np.empty((0, self.num_classes))
        return self._interval_bytes.view() / self.tau


class BacklogSampler:
    """Samples per-class queue backlogs at a fixed period.

    Unlike the departure-driven monitors, this one polls the scheduler's
    queues on the simulator clock, capturing the backlog trajectory the
    BPR analysis (Proposition 1) is stated in terms of.  Attach with
    :meth:`attach`, which schedules the sampling loop.
    """

    def __init__(self, period: float, horizon: float) -> None:
        if period <= 0 or horizon <= 0:
            raise ConfigurationError("period and horizon must be positive")
        self.period = period
        self.horizon = horizon
        self.times: list[float] = []
        #: One row per sample: bytes queued per class.
        self.samples: list[list[float]] = []
        self._link = None
        self._sim = None

    def attach(self, sim, link) -> None:
        """Start sampling ``link``'s scheduler queues on ``sim``."""
        self._sim = sim
        self._link = link
        sim.schedule(sim.now + self.period, self._sample)

    def _sample(self) -> None:
        queues = self._link.scheduler.queues
        self.times.append(self._sim.now)
        self.samples.append(list(queues.bytes_backlog))
        next_time = self._sim.now + self.period
        if next_time <= self.horizon:
            self._sim.schedule(next_time, self._sample)

    def as_array(self) -> np.ndarray:
        """(num_samples, num_classes) backlog matrix."""
        if not self.samples:
            return np.empty((0, 0))
        return np.asarray(self.samples)


class PacketTap:
    """Raw per-packet samples inside a departure-time window."""

    def __init__(
        self,
        num_classes: int,
        start: float = 0.0,
        end: float = math.inf,
    ) -> None:
        if end <= start:
            raise ConfigurationError("tap window must have end > start")
        self.num_classes = num_classes
        self.start = start
        self.end = end
        self._buffers = [_SampleBuffer(columns=2) for _ in range(num_classes)]

    def on_departure(self, packet: Packet, now: float) -> None:
        if self.start <= now < self.end:
            delay = packet.service_start - packet.arrived_at
            self._buffers[packet.class_id].append((now, delay))

    @property
    def samples(self) -> list[list[tuple[float, float]]]:
        """Per class: list of (departure_time, queueing_delay) tuples."""
        return [
            [tuple(row) for row in buf.view().tolist()]
            for buf in self._buffers
        ]

    def samples_array(self, class_id: int) -> np.ndarray:
        """(n, 2) array of (departure_time, delay) rows (no copy)."""
        return self._buffers[class_id].view()

    def ipdv(self, class_id: int) -> float:
        """Inter-packet delay variation (RFC 3393 flavour): the mean
        absolute delay difference between consecutive departures of the
        class inside the tap window.  NaN with fewer than 2 samples."""
        rows = self._buffers[class_id].view()
        if len(rows) < 2:
            return math.nan
        return float(np.abs(np.diff(rows[:, 1])).mean())
