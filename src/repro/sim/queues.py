"""Per-class FIFO queues.

Schedulers in this library never reorder packets *within* a class (the
paper's model is one FIFO per class); they only choose which class to
serve next.  :class:`ClassQueueSet` owns one FIFO per class plus the
byte/packet counters every scheduler needs.

Columnar storage
----------------
The drain kernels (:mod:`repro.sim.link`) carry unobserved packets as
*columns* instead of objects: each class owns a flat interleaved list
``cols[cid] = [arrived_at, size, meta, arrived_at, size, meta, ...]``
consumed through an element cursor ``col_heads[cid]`` (always a
multiple of 3).  ``meta`` is the lazily-materializable identity of the
packet:

* a real :class:`~repro.sim.packet.Packet` (already materialized --
  e.g. pushed by an evented arrival while columns were live),
* a bare ``int`` packet id (``flow_id is None``, ``created_at ==
  arrived_at``, no prior hops -- the common case for fresh arrivals),
* a tuple ``(packet_id, flow_id, created_at, hop_delay_history)`` for
  anything richer (flow-tagged packets, packets that already crossed
  hops in a fused chain).

A class FIFO is therefore a *hybrid*: the deque holds the oldest
packets (all real objects), the column holds the newest.  Push lands in
the column only when the column already has live entries, so order is
never interleaved; pops take the deque first.  :func:`materialize_entry`
rebuilds the real ``Packet`` -- bit-identical to the one the evented
path would have carried -- whenever an entry crosses an observation
boundary (``pop``/``head``/``heads``/``pop_tail``/:meth:`demote`).
``col_count`` (total live column entries across classes) gates every
column branch, so a run that never uses columns pays one integer test.
"""

from __future__ import annotations

from collections import deque
from math import inf
from typing import Iterator, Optional

from ..errors import SchedulingError
from .packet import Packet

__all__ = ["ClassQueueSet"]

#: Consumed-prefix length (in elements) at which a column is compacted.
#: Columns are append-only between compactions, so the consumed prefix
#: is dropped in one ``del col[:h]`` slice well before it can dominate
#: the list's footprint.
_COL_COMPACT = 3 * 1024


def materialize_entry(
    class_id: int, arrived_at: float, size: float, meta
) -> Packet:
    """Build the real :class:`Packet` for one columnar entry.

    ``meta`` is an ``int`` packet id or a ``(packet_id, flow_id,
    created_at, hop_delay_history)`` tuple (see module docstring); the
    result is field-for-field identical to the object the evented path
    would have carried to the same point.
    """
    if type(meta) is int:
        return Packet(meta, class_id, size, arrived_at)
    packet = Packet(meta[0], class_id, size, meta[2], meta[1])
    packet.arrived_at = arrived_at
    hist = meta[3]
    if hist:
        packet.hop_delays = list(hist)
    return packet


class ClassQueueSet:
    """N per-class FIFO queues with byte and packet accounting.

    Besides the byte/packet counters, the set maintains
    :attr:`head_arrivals` -- each class's head-packet arrival timestamp
    (``+inf`` for an empty queue) -- updated incrementally on every
    push/pop.  Head-of-line timestamps are the *only* queue state the
    waiting-time schedulers (WTP, quantized WTP, FCFS, strict,
    additive) need per selection, and a flat float list scan is several
    times cheaper than touching each deque and packet object.
    Maintaining the keys here rather than in scheduler hooks keeps them
    correct on paths that bypass the scheduler, such as drop policies
    calling :meth:`pop_tail` -- and it is what lets the columnar drain
    kernels schedule packets that were never objects to begin with (see
    module docstring).
    """

    __slots__ = (
        "num_classes",
        "queues",
        "bytes_backlog",
        "total_packets",
        "head_arrivals",
        "cols",
        "col_heads",
        "col_count",
    )

    def __init__(self, num_classes: int) -> None:
        if num_classes < 1:
            raise SchedulingError("need at least one class")
        self.num_classes = num_classes
        self.queues: list[deque[Packet]] = [deque() for _ in range(num_classes)]
        #: Backlog of each class in bytes.
        self.bytes_backlog: list[float] = [0.0] * num_classes
        #: Packets queued across all classes.  A plain attribute, not a
        #: property: it is read once per select/enqueue on the hot path.
        self.total_packets = 0
        #: Arrival time of each class's head packet (``+inf`` if empty).
        self.head_arrivals: list[float] = [inf] * num_classes
        #: Columnar suffix of each class FIFO (module docstring).
        self.cols: list[list] = [[] for _ in range(num_classes)]
        #: Element cursor of each column's live head (multiple of 3).
        self.col_heads: list[int] = [0] * num_classes
        #: Live columnar entries across all classes (0 == pure objects).
        self.col_count = 0

    # ------------------------------------------------------------------
    def push(self, packet: Packet) -> None:
        """Append ``packet`` to its class queue."""
        cid = packet.class_id
        if not 0 <= cid < self.num_classes:
            raise SchedulingError(
                f"packet class {cid} out of range [0, {self.num_classes})"
            )
        if self.col_count:
            col = self.cols[cid]
            if len(col) != self.col_heads[cid]:
                # The class tail lives in the column: append there (as a
                # pre-materialized meta) so FIFO order is preserved.
                col.extend((packet.arrived_at, packet.size, packet))
                self.col_count += 1
                self.bytes_backlog[cid] += packet.size
                self.total_packets += 1
                return
        queue = self.queues[cid]
        if not queue:
            self.head_arrivals[cid] = packet.arrived_at
        queue.append(packet)
        self.bytes_backlog[cid] += packet.size
        self.total_packets += 1

    def push_col(self, class_id: int, arrived_at: float, size: float, meta) -> None:
        """Append one columnar entry (see module docstring) to a class."""
        if not 0 <= class_id < self.num_classes:
            raise SchedulingError(
                f"packet class {class_id} out of range [0, {self.num_classes})"
            )
        if self.head_arrivals[class_id] == inf:
            self.head_arrivals[class_id] = arrived_at
        self.cols[class_id].extend((arrived_at, size, meta))
        self.col_count += 1
        self.bytes_backlog[class_id] += size
        self.total_packets += 1

    def pop(self, class_id: int) -> Packet:
        """Remove and return the head packet of ``class_id``."""
        queue = self.queues[class_id]
        if queue:
            packet = queue.popleft()
            # Snap to zero on empty so float residue never leaks into
            # backlog-driven schedulers (BPR rates) or totals.
            if queue:
                self.bytes_backlog[class_id] -= packet.size
                self.head_arrivals[class_id] = queue[0].arrived_at
            else:
                col = self.cols[class_id]
                h = self.col_heads[class_id]
                if h < len(col):
                    self.bytes_backlog[class_id] -= packet.size
                    self.head_arrivals[class_id] = col[h]
                else:
                    self.bytes_backlog[class_id] = 0.0
                    self.head_arrivals[class_id] = inf
            self.total_packets -= 1
            return packet
        col = self.cols[class_id]
        h = self.col_heads[class_id]
        if h >= len(col):
            raise SchedulingError(f"pop from empty class queue {class_id}")
        arrived = col[h]
        size = col[h + 1]
        meta = col[h + 2]
        packet = (
            meta
            if type(meta) is Packet
            else materialize_entry(class_id, arrived, size, meta)
        )
        h += 3
        self.col_count -= 1
        if h == len(col):
            col.clear()
            self.col_heads[class_id] = 0
            self.bytes_backlog[class_id] = 0.0
            self.head_arrivals[class_id] = inf
        else:
            if h >= _COL_COMPACT:
                del col[:h]
                h = 0
            self.col_heads[class_id] = h
            self.bytes_backlog[class_id] -= size
            self.head_arrivals[class_id] = col[h]
        self.total_packets -= 1
        return packet

    def pop_tail(self, class_id: int) -> Packet:
        """Remove and return the *tail* packet (used by drop policies)."""
        col = self.cols[class_id]
        h = self.col_heads[class_id]
        if len(col) > h:
            # Newest entries live in the column: its tail is the class
            # tail.
            meta = col.pop()
            size = col.pop()
            arrived = col.pop()
            packet = (
                meta
                if type(meta) is Packet
                else materialize_entry(class_id, arrived, size, meta)
            )
            self.col_count -= 1
            if len(col) == h:
                col.clear()
                self.col_heads[class_id] = 0
                if self.queues[class_id]:
                    self.bytes_backlog[class_id] -= size
                else:
                    self.bytes_backlog[class_id] = 0.0
                    self.head_arrivals[class_id] = inf
            else:
                self.bytes_backlog[class_id] -= size
            self.total_packets -= 1
            return packet
        queue = self.queues[class_id]
        if not queue:
            raise SchedulingError(f"pop_tail from empty class queue {class_id}")
        packet = queue.pop()
        self.bytes_backlog[class_id] = (
            self.bytes_backlog[class_id] - packet.size if queue else 0.0
        )
        if not queue:
            self.head_arrivals[class_id] = inf
        self.total_packets -= 1
        return packet

    def demote(self) -> None:
        """Materialize every live columnar entry into its class deque.

        Called at observation boundaries that need direct object access
        to whole queues (invariant checker attach, hook fallback).
        Counters and :attr:`head_arrivals` are already exact, so only
        the storage representation changes.
        """
        if not self.col_count:
            return
        for cid in range(self.num_classes):
            col = self.cols[cid]
            h = self.col_heads[cid]
            n = len(col)
            if h < n:
                queue = self.queues[cid]
                while h < n:
                    meta = col[h + 2]
                    queue.append(
                        meta
                        if type(meta) is Packet
                        else materialize_entry(cid, col[h], col[h + 1], meta)
                    )
                    h += 3
            if n:
                col.clear()
            self.col_heads[cid] = 0
        self.col_count = 0

    # ------------------------------------------------------------------
    def head(self, class_id: int) -> Optional[Packet]:
        """Head packet of ``class_id`` without removing it, or ``None``.

        A columnar head is materialized in place (promoted into the
        deque prefix) so repeated peeks return the same object.
        """
        queue = self.queues[class_id]
        if queue:
            return queue[0]
        col = self.cols[class_id]
        h = self.col_heads[class_id]
        if h >= len(col):
            return None
        meta = col[h + 2]
        packet = (
            meta
            if type(meta) is Packet
            else materialize_entry(class_id, col[h], col[h + 1], meta)
        )
        queue.append(packet)
        h += 3
        self.col_count -= 1
        if h == len(col):
            col.clear()
            h = 0
        elif h >= _COL_COMPACT:
            del col[:h]
            h = 0
        self.col_heads[class_id] = h
        return packet

    def backlog_packets(self, class_id: int) -> int:
        """Number of packets queued in ``class_id``."""
        return len(self.queues[class_id]) + (
            (len(self.cols[class_id]) - self.col_heads[class_id]) // 3
        )

    def backlog_bytes(self, class_id: int) -> float:
        """Bytes queued in ``class_id``."""
        return self.bytes_backlog[class_id]

    @property
    def total_bytes(self) -> float:
        """Bytes queued across all classes."""
        return sum(self.bytes_backlog)

    def is_empty(self) -> bool:
        """True when no class has a queued packet."""
        return self.total_packets == 0

    def heads(self) -> list[Optional[Packet]]:
        """Head packet of every class (``None`` for empty queues).

        Used by the invariant checker to snapshot the dispatch
        candidates before a scheduler's ``select`` pops one of them.
        """
        return [self.head(cid) for cid in range(self.num_classes)]

    def backlogged_classes(self) -> Iterator[int]:
        """Yield the indices of classes with at least one queued packet."""
        for cid in range(self.num_classes):
            if self.queues[cid] or len(self.cols[cid]) > self.col_heads[cid]:
                yield cid

    def __len__(self) -> int:
        return self.total_packets
