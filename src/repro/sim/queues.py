"""Per-class FIFO queues.

Schedulers in this library never reorder packets *within* a class (the
paper's model is one FIFO per class); they only choose which class to
serve next.  :class:`ClassQueueSet` owns one FIFO per class plus the
byte/packet counters every scheduler needs.
"""

from __future__ import annotations

from collections import deque
from math import inf
from typing import Iterator, Optional

from ..errors import SchedulingError
from .packet import Packet

__all__ = ["ClassQueueSet"]


class ClassQueueSet:
    """N per-class FIFO queues with byte and packet accounting.

    Besides the byte/packet counters, the set maintains
    :attr:`head_arrivals` -- each class's head-packet arrival timestamp
    (``+inf`` for an empty queue) -- updated incrementally on every
    push/pop.  Head-of-line timestamps are the *only* queue state the
    waiting-time schedulers (WTP, quantized WTP, FCFS) need per
    selection, and a flat float list scan is several times cheaper than
    touching each deque and packet object.  Maintaining the keys here
    rather than in scheduler hooks keeps them correct on paths that
    bypass the scheduler, such as drop policies calling
    :meth:`pop_tail`.
    """

    __slots__ = (
        "num_classes",
        "queues",
        "bytes_backlog",
        "total_packets",
        "head_arrivals",
    )

    def __init__(self, num_classes: int) -> None:
        if num_classes < 1:
            raise SchedulingError("need at least one class")
        self.num_classes = num_classes
        self.queues: list[deque[Packet]] = [deque() for _ in range(num_classes)]
        #: Backlog of each class in bytes.
        self.bytes_backlog: list[float] = [0.0] * num_classes
        #: Packets queued across all classes.  A plain attribute, not a
        #: property: it is read once per select/enqueue on the hot path.
        self.total_packets = 0
        #: Arrival time of each class's head packet (``+inf`` if empty).
        self.head_arrivals: list[float] = [inf] * num_classes

    # ------------------------------------------------------------------
    def push(self, packet: Packet) -> None:
        """Append ``packet`` to its class queue."""
        cid = packet.class_id
        if not 0 <= cid < self.num_classes:
            raise SchedulingError(
                f"packet class {cid} out of range [0, {self.num_classes})"
            )
        queue = self.queues[cid]
        if not queue:
            self.head_arrivals[cid] = packet.arrived_at
        queue.append(packet)
        self.bytes_backlog[cid] += packet.size
        self.total_packets += 1

    def pop(self, class_id: int) -> Packet:
        """Remove and return the head packet of ``class_id``."""
        queue = self.queues[class_id]
        if not queue:
            raise SchedulingError(f"pop from empty class queue {class_id}")
        packet = queue.popleft()
        # Snap to zero on empty so float residue never leaks into
        # backlog-driven schedulers (BPR rates) or totals.
        self.bytes_backlog[class_id] = (
            self.bytes_backlog[class_id] - packet.size if queue else 0.0
        )
        self.head_arrivals[class_id] = queue[0].arrived_at if queue else inf
        self.total_packets -= 1
        return packet

    def pop_tail(self, class_id: int) -> Packet:
        """Remove and return the *tail* packet (used by drop policies)."""
        queue = self.queues[class_id]
        if not queue:
            raise SchedulingError(f"pop_tail from empty class queue {class_id}")
        packet = queue.pop()
        self.bytes_backlog[class_id] = (
            self.bytes_backlog[class_id] - packet.size if queue else 0.0
        )
        if not queue:
            self.head_arrivals[class_id] = inf
        self.total_packets -= 1
        return packet

    # ------------------------------------------------------------------
    def head(self, class_id: int) -> Optional[Packet]:
        """Head packet of ``class_id`` without removing it, or ``None``."""
        queue = self.queues[class_id]
        return queue[0] if queue else None

    def backlog_packets(self, class_id: int) -> int:
        """Number of packets queued in ``class_id``."""
        return len(self.queues[class_id])

    def backlog_bytes(self, class_id: int) -> float:
        """Bytes queued in ``class_id``."""
        return self.bytes_backlog[class_id]

    @property
    def total_bytes(self) -> float:
        """Bytes queued across all classes."""
        return sum(self.bytes_backlog)

    def is_empty(self) -> bool:
        """True when no class has a queued packet."""
        return self.total_packets == 0

    def heads(self) -> list[Optional[Packet]]:
        """Head packet of every class (``None`` for empty queues).

        Used by the invariant checker to snapshot the dispatch
        candidates before a scheduler's ``select`` pops one of them.
        """
        return [queue[0] if queue else None for queue in self.queues]

    def backlogged_classes(self) -> Iterator[int]:
        """Yield the indices of classes with at least one queued packet."""
        for cid, queue in enumerate(self.queues):
            if queue:
                yield cid

    def __len__(self) -> int:
        return self.total_packets
