"""Seeded random-number streams.

Every stochastic component (one per traffic source) draws from its own
`numpy` Generator spawned from a single root ``SeedSequence``.  This
gives runs that are reproducible from one integer seed, and independent
across components regardless of the order in which they consume
randomness -- the standard discipline for simulation studies.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """Factory of independent child generators from one root seed."""

    def __init__(self, seed: int | None = 0) -> None:
        self._root = np.random.SeedSequence(seed)
        self.seed = seed
        self._spawned = 0

    def generator(self) -> np.random.Generator:
        """Return a fresh, independent ``numpy.random.Generator``."""
        (child,) = self._root.spawn(1)
        self._spawned += 1
        return np.random.default_rng(child)

    @property
    def spawned(self) -> int:
        """Number of generators handed out so far."""
        return self._spawned

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomStreams(seed={self.seed}, spawned={self._spawned})"
