"""Seeded random-number streams.

Every stochastic component (one per traffic source) draws from its own
`numpy` Generator spawned from a single root ``SeedSequence``.  This
gives runs that are reproducible from one integer seed, and independent
across components regardless of the order in which they consume
randomness -- the standard discipline for simulation studies.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomStreams", "BufferedExponentials"]


class RandomStreams:
    """Factory of independent child generators from one root seed."""

    def __init__(self, seed: int | None = 0) -> None:
        self._root = np.random.SeedSequence(seed)
        self.seed = seed
        self._spawned = 0

    def generator(self) -> np.random.Generator:
        """Return a fresh, independent ``numpy.random.Generator``."""
        (child,) = self._root.spawn(1)
        self._spawned += 1
        return np.random.default_rng(child)

    @property
    def spawned(self) -> int:
        """Number of generators handed out so far."""
        return self._spawned

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomStreams(seed={self.seed}, spawned={self._spawned})"


class BufferedExponentials:
    """Prefetched standard-exponential draws from one generator.

    ``draw(scale)`` returns the same float, and consumes the same
    underlying stream values in the same order, as
    ``rng.exponential(scale)`` called once per draw: numpy's scaled
    exponential is exactly ``scale * standard_exponential()``, and block
    fills of ``standard_exponential`` consume the stream identically to
    repeated scalar calls.  Prefetching a block at a time removes the
    per-draw Generator-method dispatch from arrival hot paths.

    The only observable difference is that the generator's position
    advances a block early, so the generator must be private to the
    consuming process (the :class:`RandomStreams` discipline guarantees
    this) -- never share it with another consumer.
    """

    __slots__ = ("_rng", "_block", "_buf", "_pos")

    def __init__(self, rng: np.random.Generator, block: int = 512) -> None:
        if block < 1:
            raise ValueError(f"block must be >= 1: {block}")
        self._rng = rng
        self._block = block
        self._buf: list[float] = []
        self._pos = 0

    def draw(self, scale: float) -> float:
        """One exponential draw with the given ``scale`` (mean)."""
        pos = self._pos
        buf = self._buf
        if pos >= len(buf):
            buf = self._buf = self._rng.standard_exponential(
                self._block
            ).tolist()
            pos = 0
        self._pos = pos + 1
        return scale * buf[pos]
