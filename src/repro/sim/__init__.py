"""Discrete-event simulation substrate (kernel, packets, queues, links)."""

from .engine import Simulator
from .events import EventHandle
from .hybrid import HybridConfig, HybridController, run_hybrid_city
from .link import Link, PacketSink
from .monitor import (
    BacklogSampler,
    DelayMonitor,
    IntervalDelayMonitor,
    PacketTap,
    ThroughputMonitor,
)
from .packet import Packet
from .process import AsyncQueue, Event, Process, spawn
from .queues import ClassQueueSet
from .rng import RandomStreams

__all__ = [
    "Simulator",
    "EventHandle",
    "HybridConfig",
    "HybridController",
    "run_hybrid_city",
    "Link",
    "PacketSink",
    "BacklogSampler",
    "DelayMonitor",
    "IntervalDelayMonitor",
    "PacketTap",
    "ThroughputMonitor",
    "Packet",
    "AsyncQueue",
    "Event",
    "Process",
    "spawn",
    "ClassQueueSet",
    "RandomStreams",
]
