"""Hybrid fluid/packet engine: fluid fast-forward between transients.

The paper's steady-state results describe exactly the regimes where
packet-by-packet simulation is the wrong altitude.  During a "boring"
interval -- no source onsets/offsets, no load-shape edges, no sustained
rate jump -- each link's *aggregate* behaviour is fully determined by
its arrival trace through the FCFS workload process, and the per-class
split is pinned by the conservation law:

    sum_i lambda_i * d_i = lambda * d(lambda)                    (Eq 5)

so a fluid segment needs no event loop at all:

* **Aggregate (exact).**  The mean aggregate queueing delay over the
  segment is the Lindley recursion over the segment's arrivals
  (:func:`~repro.core.conservation.fcfs_waiting_times`) -- a vectorized
  O(n) numpy pass instead of ~n heap events, which is where the >=10x
  wall-clock comes from.  Carried-in backlog enters as one virtual
  arrival of the backlog's total bytes at the segment start, so the
  workload trajectory (including its terminal value, the carried-out
  backlog) is exact, not an ODE discretization.
* **Network-wide (new).**  A fluid segment covers *every* link of the
  cell's topology, walked in topological order: each link's departure
  process -- arrival time plus Lindley wait plus transmission time,
  exact for any work-conserving discipline because the aggregate
  workload process is discipline-independent -- becomes the arrival
  process of its downstream link, so one segment fast-forwards whole
  FlowDemux chains and fan-in DAGs in a single numpy pass per link.
  Carried backlogs are tracked per link and re-seeded per link at the
  fluid->packet handoff.
* **Per-class (model).**  The monitored link's aggregate mean is
  distributed across classes by a scheduler-specific *fluid map* that
  satisfies Eq 5 exactly.  Maps live in a pluggable registry
  (:func:`register_fluid_map`): equal delays for FCFS, inverse-SDP
  proportional delays for WTP/BPR (Eq 6) and for PAD/HPD (the
  normalized-delay model of Eq 2/3 targets the same proportional fixed
  point), and GPS rate-guarantee congestion for DRR/SCFQ/WFQ
  (water-filled per-class service rates; see
  :func:`repro.schedulers.wfq.gps_fluid_rates`).  Strict priority uses
  the successive-subset decomposition (class-filtered Lindley replays,
  the Eq 7 telescope).  Once the run has packet-measured per-class
  means (the calibration spin-up), every map switches to *measured*
  split coefficients projected back onto Eq 5 -- self-calibrating to
  the scheduler's actual differentiation at the operating point.
* **Envelopes.**  Each fluid window's per-class means are cross-checked
  at the segment boundary against two analytic envelopes before being
  credited: the Multiclass-FIFO delay bound (Jiang & Misra: no class
  mean can exceed the worst aggregate wait plus a transmission, up to
  slack) and, for the rate-guarantee schedulers, the DRR/SCFQ
  guaranteed-rate bound (Mukherjee et al.: a class's mean cannot exceed
  its dedicated-rate Lindley mean plus one round, up to slack).  A
  violation *demotes* the segment: it re-runs in packet mode and the
  demotion is recorded in the controller timeline.
* **Arrival-free stretches** drain analytically: BPR through
  :class:`~repro.schedulers.bpr.FluidBPRTracker` (Proposition 1's
  closed form), strict priority top-down, everything else
  proportionally, with :func:`~repro.schedulers.bpr.fluid_clearing_time`
  bounding the drain.

Packet mode runs the ordinary drain-kernel simulation on the real
topology around every transient: startup + warm-up + calibration,
guard bands at each envelope change point and load-shape edge, and any
stretch whose *predicted fluid error* -- the coefficient of variation
of the binned aggregate rate, a direct stationarity measure -- exceeds
the error-bound knob ``epsilon``.  ``epsilon = 0`` therefore forces
packet mode everywhere and the controller short-circuits to the
unmodified pure-packet path (bit-identical to an evented run by
construction; asserted in :mod:`tests.differential` for every
registered scheduler, single-hop and multihop).

Handoff contract (see DESIGN.md):

* **packet -> fluid** happens at a *regeneration point*: the packet
  segment is extended past its planned boundary until every link goes
  idle (at rho < 1 busy periods end quickly), so the fluid segment
  starts from zero backlog network-wide -- an exact handoff.  If no
  idle instant appears within ``regen_window`` (sustained overload),
  the per-class backlog of *each link* is read via
  :meth:`~repro.sim.link.Link.backlog_snapshot` and carried into the
  per-link fluid state.
* **fluid -> packet** symmetrically prefers a *network-wide* idle cut:
  the last external arrival instant near the boundary at which every
  link's Lindley walk has fully drained (all departures at or before
  the cut).  Arrivals from the cut on are deferred to the following
  packet segment, which then starts from genuinely empty queues.
  Without such a cut, each link's terminal fluid backlog is
  materialized as synthetic packets with backdated arrivals and
  injected through :meth:`~repro.sim.link.Link.seed_backlog` on that
  link.

Wall-clock wiring: :meth:`Simulator.run(hybrid=...)
<repro.sim.engine.Simulator.run>` delegates a whole run to a
:class:`HybridController`; :func:`repro.scenarios.city.city_summary`
builds one when the cell config carries a :class:`HybridConfig`;
``repro.cli city --hybrid`` and the :class:`ShardRunner` sweeps flow
through that config field (which also lands in the runner cache
fingerprint automatically -- hybrid and pure cells never collide).
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

# NOTE: repro.core.conservation and repro.schedulers.* are imported
# lazily inside the functions that use them: repro.core pulls in
# repro.traffic, which pulls in this package's __init__ -- a top-level
# import here would close that cycle during interpreter start-up.
from ..errors import ConfigurationError
from .engine import Simulator
from .monitor import DelayMonitor
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scenarios.city import CityScenarioConfig
    from ..traffic.trace import ArrivalTrace

__all__ = [
    "FLUID_SCHEDULERS",
    "ENVELOPE_SLACK",
    "HybridConfig",
    "Segment",
    "FluidSplitContext",
    "FluidWindowResult",
    "register_fluid_map",
    "fluid_supported",
    "fluid_split",
    "fluid_window",
    "drain_idle",
    "check_fluid_envelopes",
    "plan_segments",
    "HybridController",
    "run_hybrid_city",
]

#: Packet-measured samples per class required before the calibrated
#: (measured-split) fluid map replaces the analytic one.
_CALIBRATION_SAMPLES = 50

#: Multiplicative slack on the analytic fluid-segment envelopes: the
#: bounds certify the *model*, not the sample path, so they only need
#: to catch split maps that have drifted wildly off the conservation
#: law, not shave the last factor of two.
ENVELOPE_SLACK = 4.0

#: Schedulers whose fluid map rests on a per-class rate guarantee and
#: therefore gets the DRR/SCFQ guaranteed-rate envelope check.
_RATE_GUARANTEE_SCHEDULERS = ("drr", "scfq", "wfq")


@dataclass(frozen=True)
class HybridConfig:
    """Hybrid-engine knobs.  Time fields share the scenario's unit (ms).

    ``epsilon`` is the error-bound knob: a candidate fluid stretch runs
    in fluid mode only when its predicted error -- the coefficient of
    variation of the binned aggregate arrival rate, a stationarity
    proxy validated against full packet-level golden runs -- stays at
    or below ``epsilon``.  ``epsilon = 0`` rejects every stretch and
    the run short-circuits to the unmodified pure-packet path.
    """

    epsilon: float = 0.05
    #: Envelope bin width for rate estimation and transient detection.
    bin_width: float = 250.0
    #: Relative aggregate-rate jump flagged as a transient.
    rate_jump: float = 0.25
    #: Packet-mode guard band on each side of every transient.
    guard: float = 500.0
    #: Packet-mode calibration span after warm-up (measures the
    #: per-class split the calibrated fluid map projects onto Eq 5).
    spinup: float = 2000.0
    #: Minimum span worth switching to fluid for.
    min_fluid: float = 2000.0
    #: How far past a boundary to search for an idle regeneration
    #: instant before falling back to backlog seeding.
    regen_window: float = 500.0

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ConfigurationError(
                f"epsilon must be non-negative: {self.epsilon}"
            )
        for name in ("bin_width", "rate_jump", "spinup", "min_fluid"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        for name in ("guard", "regen_window"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


@dataclass(frozen=True)
class Segment:
    """One planned interval of the run, in one mode."""

    start: float
    end: float
    mode: str  # "packet" | "fluid"

    @property
    def span(self) -> float:
        return self.end - self.start


@dataclass
class FluidWindowResult:
    """Outcome of one fluid window evaluation."""

    d_agg: float
    delays: list[float]
    counts: list[int]
    end_backlogs: list[float]
    #: Where the window actually ended: the boundary, or an earlier
    #: idle regeneration instant when one was requested and found.
    handoff_time: float
    #: True when the window ended at an idle instant (empty handoff).
    regenerated: bool
    #: Arrivals NOT consumed (deferred past ``handoff_time``).
    deferred: int = 0


# ----------------------------------------------------------------------
# Fluid split-map registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FluidSplitContext:
    """Everything a fluid split map may condition on for one window.

    ``class_bytes`` is the per-class offered byte mass of the window
    (falls back to the packet counts when a caller has no sizes);
    ``span``/``capacity`` are optional -- rate-based maps renormalize
    to a nominal 90%-utilization operating point when they are absent
    (direct :func:`fluid_split` calls in tests and tools).
    """

    sdps: tuple[float, ...]
    counts: tuple[int, ...]
    d_agg: float
    class_bytes: tuple[float, ...]
    span: Optional[float] = None
    capacity: Optional[float] = None


#: Registered fluid split maps: scheduler name -> map callable.  A map
#: takes a :class:`FluidSplitContext` and returns one non-negative
#: finite *relative* delay coefficient per class; :func:`fluid_split`
#: scales them onto Eq 5.
_FLUID_MAPS: dict[str, Callable[[FluidSplitContext], Sequence[float]]] = {}

#: Built-in maps that live next to their schedulers, resolved lazily to
#: keep import edges one-directional (schedulers may import this module
#: for registration helpers).
_BUILTIN_FLUID_MAPS: dict[str, tuple[str, str]] = {
    "drr": ("repro.schedulers.drr", "drr_fluid_map"),
    "scfq": ("repro.schedulers.wfq", "scfq_fluid_map"),
    "wfq": ("repro.schedulers.wfq", "scfq_fluid_map"),
    "pad": ("repro.schedulers.pad", "pad_fluid_map"),
    "hpd": ("repro.schedulers.hpd", "hpd_fluid_map"),
}


def _fcfs_fluid_map(ctx: FluidSplitContext) -> list[float]:
    """FCFS: one shared queueing delay."""
    return [1.0] * len(ctx.sdps)


def _inverse_sdp_fluid_map(ctx: FluidSplitContext) -> list[float]:
    """WTP/BPR: Eq 6's proportional model, d_i proportional to 1/s_i
    (both schedulers approach it in heavy load -- BPR exactly in the
    fluid limit of Proposition 1)."""
    return [1.0 / s for s in ctx.sdps]


_FLUID_MAPS["fcfs"] = _fcfs_fluid_map
_FLUID_MAPS["wtp"] = _inverse_sdp_fluid_map
_FLUID_MAPS["bpr"] = _inverse_sdp_fluid_map


def register_fluid_map(
    name: str,
    fn: Callable[[FluidSplitContext], Sequence[float]],
    *,
    calibration_weight: Optional[float] = None,
) -> None:
    """Register (or override) the fluid split map for a scheduler name.

    ``fn`` receives a :class:`FluidSplitContext` and returns one
    non-negative finite coefficient per class; the hybrid engine scales
    the coefficients onto the conservation law (Eq 5), so only their
    *ratios* matter.  Registration is how out-of-tree schedulers opt
    into fluid segments.

    ``calibration_weight`` (optional, in ``[0, 1]``) is stored on the
    map and controls how much packet-measured splits override the
    analytic shape once calibration samples exist -- see
    :func:`fluid_split`.  Omit it to trust the measurement fully.
    """
    if not callable(fn):
        raise ConfigurationError(f"fluid map for {name!r} must be callable")
    if calibration_weight is not None:
        if not 0.0 <= calibration_weight <= 1.0:
            raise ConfigurationError(
                f"calibration_weight must be in [0, 1]: {calibration_weight}"
            )
        fn.calibration_weight = float(calibration_weight)  # type: ignore[attr-defined]
    _FLUID_MAPS[name.lower()] = fn


def fluid_supported() -> tuple[str, ...]:
    """Scheduler names that can take fluid segments, sorted.

    Includes every registered split map plus ``strict``, whose
    successive-subset decomposition lives in :func:`fluid_window`
    rather than the coefficient registry.
    """
    names = set(_FLUID_MAPS) | set(_BUILTIN_FLUID_MAPS) | {"strict"}
    return tuple(sorted(names))


def _fluid_map_for(
    scheduler: str,
) -> Callable[[FluidSplitContext], Sequence[float]]:
    """Resolve a scheduler's split map, importing built-ins lazily."""
    key = scheduler.lower()
    fn = _FLUID_MAPS.get(key)
    if fn is not None:
        return fn
    builtin = _BUILTIN_FLUID_MAPS.get(key)
    if builtin is not None:
        import importlib

        module, attr = builtin
        fn = getattr(importlib.import_module(module), attr)
        _FLUID_MAPS[key] = fn
        return fn
    raise ConfigurationError(
        f"no fluid map registered for scheduler {scheduler!r}; "
        f"supported: {fluid_supported()}; add one via "
        f"repro.sim.hybrid.register_fluid_map(name, fn)"
    )


def _has_fluid_map(scheduler: str) -> bool:
    key = scheduler.lower()
    return key in _FLUID_MAPS or key in _BUILTIN_FLUID_MAPS


#: Back-compat alias: the scheduler names with built-in fluid support.
FLUID_SCHEDULERS = fluid_supported()


# ----------------------------------------------------------------------
# Fluid per-class delay maps (Eq 5)
# ----------------------------------------------------------------------
def fluid_split(
    scheduler: str,
    sdps: Sequence[float],
    counts: Sequence[int],
    d_agg: float,
    calibration: Optional[Sequence[float]] = None,
    *,
    class_bytes: Optional[Sequence[float]] = None,
    span: Optional[float] = None,
    capacity: Optional[float] = None,
) -> list[float]:
    """Per-class mean delays satisfying Eq 5 for a stationary window.

    The aggregate mean ``d_agg`` (exact, from the Lindley replay) is
    split as ``d_i = c_i * K`` with ``K`` chosen so that
    ``sum_i n_i d_i = n * d_agg`` holds exactly.  The split
    coefficients ``c_i`` are the *measured* per-class means when a
    calibration vector is supplied (projecting the scheduler's actual
    differentiation onto the conservation law), else come from the
    scheduler's registered fluid map (:func:`register_fluid_map`).

    A map may set a ``calibration_weight`` attribute in ``[0, 1]`` to
    control how much the measured shape overrides its analytic shape
    once calibration samples exist: 1.0 (the default) trusts the
    measurement outright, lower values shrink the measured coefficients
    toward the analytic prior.  PAD uses a low weight because its
    feedback loop enforces the proportional fixed point at *every*
    load, so short packet-mode measurements (taken while its running
    averages re-converge) are noisier than the model they would
    replace; rate-based maps (drr/scfq/wfq) keep 1.0 because their
    congestion model is only a cold-start approximation.

    Strict priority has no rate-free split and is handled by
    :func:`fluid_window` via successive subsets.
    """
    if scheduler == "strict":
        raise ConfigurationError(
            "strict priority needs the successive-subset map; "
            "use fluid_window"
        )
    fn = _fluid_map_for(scheduler)
    if len(counts) != len(sdps):
        raise ConfigurationError("one arrival count per class required")

    def _analytic() -> list[float]:
        ctx = FluidSplitContext(
            sdps=tuple(float(s) for s in sdps),
            counts=tuple(int(n) for n in counts),
            d_agg=float(d_agg),
            class_bytes=(
                tuple(float(b) for b in class_bytes)
                if class_bytes is not None
                else tuple(float(n) for n in counts)
            ),
            span=span,
            capacity=capacity,
        )
        values = [float(c) for c in fn(ctx)]
        if len(values) != len(sdps) or any(
            not math.isfinite(c) or c < 0 for c in values
        ):
            raise ConfigurationError(
                f"fluid map for {scheduler!r} must return one non-negative "
                f"finite coefficient per class, got {values}"
            )
        return values

    if calibration is not None:
        coeffs = [float(c) for c in calibration]
        if len(coeffs) != len(sdps) or any(
            not math.isfinite(c) or c <= 0 for c in coeffs
        ):
            raise ConfigurationError(
                f"calibration must be positive and finite per class: {coeffs}"
            )
        weight = min(1.0, max(0.0, getattr(fn, "calibration_weight", 1.0)))
        if weight < 1.0:
            # Shrink the measured shape toward the analytic prior.  Both
            # vectors are normalized to a count-weighted mean of one so
            # the blend mixes *shapes*; the absolute scale is re-imposed
            # by Eq 5 below either way.
            analytic = _analytic()
            total = sum(counts)
            m_norm = sum(n * c for n, c in zip(counts, coeffs))
            a_norm = sum(n * c for n, c in zip(counts, analytic))
            if total > 0 and m_norm > 0 and a_norm > 0:
                coeffs = [
                    weight * (c * total / m_norm)
                    + (1.0 - weight) * (a * total / a_norm)
                    for c, a in zip(coeffs, analytic)
                ]
    else:
        coeffs = _analytic()
    weighted = sum(n * c for n, c in zip(counts, coeffs))
    total = sum(counts)
    if total == 0 or weighted <= 0:
        return [math.nan] * len(sdps)
    scale = total * d_agg / weighted
    return [c * scale for c in coeffs]


def drain_idle(
    scheduler: str,
    sdps: Sequence[float],
    capacity: float,
    backlogs: Sequence[float],
    span: float,
) -> list[float]:
    """Advance carried backlogs through an arrival-free fluid stretch.

    BPR follows Proposition 1's closed form
    (:class:`~repro.schedulers.bpr.FluidBPRTracker`); strict priority
    depletes top class down; every other discipline drains
    proportionally (the uniform-theta fluid, exact for FCFS backlog
    whose per-class composition is uniform in arrival order).  All
    disciplines clear simultaneously at :func:`fluid_clearing_time` --
    work conservation fixes the total; only the per-class composition
    differs.
    """
    from ..schedulers.bpr import FluidBPRTracker, fluid_clearing_time

    if span < 0:
        raise ConfigurationError(f"span must be non-negative: {span}")
    backlogs = [float(q) for q in backlogs]
    total = sum(backlogs)
    if total <= 0:
        return [0.0] * len(backlogs)
    if span >= fluid_clearing_time(backlogs, capacity):
        return [0.0] * len(backlogs)
    if scheduler == "bpr":
        tracker = FluidBPRTracker(sdps, capacity)
        for cid, amount in enumerate(backlogs):
            tracker.add_fluid(cid, amount)
        tracker.advance(span)
        return list(tracker.backlogs)
    if scheduler == "strict":
        budget = capacity * span
        out = list(backlogs)
        for cid in range(len(out) - 1, -1, -1):
            served = min(out[cid], budget)
            out[cid] -= served
            budget -= served
            if budget <= 0:
                break
        return out
    drained_fraction = 1.0 - capacity * span / total
    return [q * drained_fraction for q in backlogs]


# ----------------------------------------------------------------------
# Envelope cross-checks (fluid-segment sanity bounds)
# ----------------------------------------------------------------------
def check_fluid_envelopes(
    scheduler: str,
    sdps: Sequence[float],
    delays: Sequence[float],
    counts: Sequence[int],
    waits: np.ndarray,
    times: np.ndarray,
    class_ids: np.ndarray,
    sizes: np.ndarray,
    capacity: float,
    span: float,
) -> Optional[str]:
    """Cross-check a fluid window's per-class means against analytic
    delay envelopes; return a violation description or ``None``.

    Two bounds, both with :data:`ENVELOPE_SLACK` headroom:

    * **Multiclass-FIFO delay bound** (Jiang & Misra): under any
      work-conserving discipline no class's queueing delay can exceed
      the worst aggregate backlog the window ever built, i.e.
      ``d_i <= max_k W_k + S_max / C``.  A split map whose
      differentiated mean escapes that certifies a broken coefficient
      vector, not heavy load.
    * **Rate-guarantee bound** (Mukherjee et al., DRR/SCFQ): a class
      served at a guaranteed rate ``r_i`` (GPS water-filled share,
      which is what DRR's quanta and SCFQ's weights implement) waits no
      more than its own dedicated-rate Lindley mean plus one service
      round.  Checked only for the rate-guarantee schedulers.

    Both are *model* checks at the segment boundary: a violation means
    the analytic split drifted off the physically possible region, and
    the caller demotes the segment to packet mode.
    """
    from ..core.conservation import fcfs_waiting_times

    live = [
        (cid, float(d))
        for cid, (d, n) in enumerate(zip(delays, counts))
        if n and math.isfinite(d)
    ]
    if not live or not len(waits):
        return None
    max_service = float(sizes.max()) / capacity if len(sizes) else 0.0
    fifo_bound = ENVELOPE_SLACK * (float(waits.max()) + max_service)
    worst_cid, worst = max(live, key=lambda item: item[1])
    if fifo_bound > 0 and worst > fifo_bound:
        return (
            f"multiclass-fifo bound: class {worst_cid} mean {worst:.4g} "
            f"> {fifo_bound:.4g} (slack x (max wait + max service))"
        )
    if scheduler.lower() in _RATE_GUARANTEE_SCHEDULERS and span > 0:
        from ..schedulers.wfq import gps_fluid_rates

        demands = [
            float(sizes[class_ids == cid].sum()) / span
            for cid in range(len(sdps))
        ]
        rates = gps_fluid_rates(sdps, demands, capacity)
        round_time = len(sdps) * max_service
        for cid, d in live:
            rate = rates[cid]
            if rate <= 0:
                continue
            mask = class_ids == cid
            dedicated = fcfs_waiting_times(times[mask], sizes[mask], rate)
            bound = ENVELOPE_SLACK * (
                float(dedicated.mean()) + round_time + max_service
            )
            if bound > 0 and d > bound:
                return (
                    f"rate-guarantee bound: class {cid} mean {d:.4g} "
                    f"> {bound:.4g} (slack x (dedicated-rate Lindley mean "
                    f"+ round))"
                )
    return None


# ----------------------------------------------------------------------
# Fluid window evaluation
# ----------------------------------------------------------------------
def _terminal_workload(
    times: np.ndarray, sizes: np.ndarray, capacity: float, end: float
) -> float:
    """Unfinished work (time units) of a FCFS server at ``end``.

    ``V(end) = max(0, max_k (sum_{j>=k} S_j / C - (end - t_k)))`` --
    the reversed-cumsum dual of the Lindley walk, exact for any
    work-conserving discipline (the workload process is
    discipline-independent).
    """
    if not len(times):
        return 0.0
    tail_work = np.cumsum((sizes / capacity)[::-1])[::-1]
    return float(max(0.0, (tail_work - (end - times)).max()))


def fluid_window(
    times: np.ndarray,
    class_ids: np.ndarray,
    sizes: np.ndarray,
    num_classes: int,
    capacity: float,
    start: float,
    end: float,
    scheduler: str,
    sdps: Sequence[float],
    carried: Sequence[float],
    calibration: Optional[Sequence[float]] = None,
    regen_window: float = 0.0,
) -> FluidWindowResult:
    """Evaluate one fluid segment over the arrivals in ``[start, end)``.

    ``times``/``class_ids``/``sizes`` are the segment's slice of the
    monitored link's offered trace; ``carried`` is the per-class byte
    backlog handed over at ``start``.  With ``regen_window > 0`` the
    window prefers to *end early* at the last idle (zero-wait) arrival
    within ``regen_window`` of ``end``: arrivals at and after that
    instant are deferred to the following packet segment, which then
    starts from genuinely empty queues.
    """
    from ..core.conservation import fcfs_waiting_times

    if scheduler != "strict" and not _has_fluid_map(scheduler):
        raise ConfigurationError(
            f"no fluid map registered for scheduler {scheduler!r}; "
            f"supported: {fluid_supported()}; add one via "
            f"repro.sim.hybrid.register_fluid_map(name, fn)"
        )
    carried = [float(q) for q in carried]
    if len(carried) != num_classes:
        raise ConfigurationError("one carried backlog per class required")
    carried_total = sum(carried)
    empty = [0.0] * num_classes
    if not len(times):
        drained = drain_idle(scheduler, sdps, capacity, carried, end - start)
        return FluidWindowResult(
            d_agg=math.nan,
            delays=[math.nan] * num_classes,
            counts=[0] * num_classes,
            end_backlogs=drained,
            handoff_time=end,
            regenerated=sum(drained) == 0.0,
        )

    # Aggregate Lindley replay; carried backlog enters as one virtual
    # arrival of its total bytes at the window start.
    if carried_total > 0:
        lindley_times = np.concatenate(([start], times))
        lindley_sizes = np.concatenate(([carried_total], sizes))
        offset = 1
    else:
        lindley_times = times
        lindley_sizes = sizes
        offset = 0
    waits = fcfs_waiting_times(lindley_times, lindley_sizes, capacity)

    # Regeneration: last real arrival with zero wait near the boundary
    # (the Lindley walk hits an exact float 0.0 at every new minimum).
    cut = len(times)
    regenerated = False
    if regen_window > 0:
        lo = int(np.searchsorted(times, end - regen_window, side="left"))
        zero = np.flatnonzero(waits[offset + lo :] == 0.0)
        if len(zero):
            cut = lo + int(zero[-1])
            regenerated = True

    real_waits = waits[offset : offset + cut]
    window_classes = class_ids[:cut]
    counts = np.bincount(window_classes, minlength=num_classes).tolist()
    d_agg = float(real_waits.mean()) if cut else math.nan

    if scheduler == "strict":
        delays = _strict_subset_delays(
            times[:cut], window_classes, sizes[:cut],
            num_classes, capacity, start, carried,
        )
    else:
        class_bytes = np.bincount(
            window_classes, weights=sizes[:cut], minlength=num_classes
        ).tolist()
        delays = fluid_split(
            scheduler, sdps, counts, d_agg, calibration,
            class_bytes=class_bytes, span=end - start, capacity=capacity,
        )

    if regenerated:
        return FluidWindowResult(
            d_agg=d_agg,
            delays=delays,
            counts=counts,
            end_backlogs=empty,
            handoff_time=float(times[cut]),
            regenerated=True,
            deferred=len(times) - cut,
        )
    terminal = _terminal_workload(lindley_times, lindley_sizes, capacity, end)
    return FluidWindowResult(
        d_agg=d_agg,
        delays=delays,
        counts=counts,
        end_backlogs=_split_backlog(
            terminal * capacity, counts, sizes, window_classes,
            delays, carried, num_classes,
        ),
        handoff_time=end,
        regenerated=False,
    )


def _strict_subset_delays(
    times: np.ndarray,
    class_ids: np.ndarray,
    sizes: np.ndarray,
    num_classes: int,
    capacity: float,
    start: float,
    carried: Sequence[float],
) -> list[float]:
    """Strict-priority per-class means via successive subsets (Eq 7).

    Higher class id preempts lower (non-preemptively) here, so class
    ``i`` sees exactly the FCFS system of classes ``>= i``:
    ``n_i d_i = R_{>=i} - R_{>i}`` with ``R_{>=i}`` the total wait of
    the subset replay -- Eq 5 holds per subset, so the per-class
    telescope is conservation-exact by construction.
    """
    from ..core.conservation import fcfs_waiting_times

    totals = [0.0] * (num_classes + 1)
    for lowest in range(num_classes - 1, -1, -1):
        mask = class_ids >= lowest
        sub_times = times[mask]
        sub_sizes = sizes[mask]
        carried_sub = sum(carried[lowest:])
        if carried_sub > 0:
            sub_times = np.concatenate(([start], sub_times))
            sub_sizes = np.concatenate(([carried_sub], sub_sizes))
            waits = fcfs_waiting_times(sub_times, sub_sizes, capacity)[1:]
        else:
            waits = fcfs_waiting_times(sub_times, sub_sizes, capacity)
        totals[lowest] = float(waits.sum())
    counts = np.bincount(class_ids, minlength=num_classes)
    delays = []
    for cid in range(num_classes):
        if counts[cid]:
            # Clamp: subset totals are each exact but their difference
            # can go slightly negative on near-empty classes.
            delays.append(max(totals[cid] - totals[cid + 1], 0.0) / counts[cid])
        else:
            delays.append(math.nan)
    return delays


def _split_backlog(
    total_bytes: float,
    counts: Sequence[int],
    sizes: np.ndarray,
    class_ids: np.ndarray,
    delays: Sequence[float],
    carried: Sequence[float],
    num_classes: int,
) -> list[float]:
    """Per-class composition of a terminal backlog (Little's-law split:
    waiting bytes of class i scale with its byte rate times its delay;
    falls back to the carried proportions, then uniform)."""
    if total_bytes <= 0:
        return [0.0] * num_classes
    weights = []
    for cid in range(num_classes):
        byte_mass = float(sizes[class_ids == cid].sum()) if counts[cid] else 0.0
        d = delays[cid]
        weights.append(byte_mass * d if byte_mass and math.isfinite(d) else 0.0)
    if sum(weights) <= 0:
        weights = [float(q) for q in carried]
    if sum(weights) <= 0:
        weights = [1.0] * num_classes
    scale = total_bytes / sum(weights)
    return [w * scale for w in weights]


# ----------------------------------------------------------------------
# Segment planner
# ----------------------------------------------------------------------
def plan_segments(
    horizon: float,
    warmup: float,
    hybrid: HybridConfig,
    transients: Sequence[float],
    predicted_error: Callable[[float, float], float],
    report: Optional[list[dict]] = None,
) -> list[Segment]:
    """Alternating packet/fluid plan for ``[0, horizon)``.

    Packet mode is forced on ``[0, warmup + spinup]`` (startup +
    warm-up edge + calibration) and on ``guard``-wide bands around
    every transient; the gaps between forced intervals become fluid
    *candidates*, accepted only when they span at least ``min_fluid``
    and ``predicted_error(t0, t1) <= epsilon``.  With ``epsilon = 0``
    the single returned segment is pure packet.

    When ``report`` is a list, one dict per candidate gap is appended
    describing its verdict -- ``accepted`` plus, for rejections, the
    ``reason`` (too short vs ``min_fluid``, or predicted error above
    ``epsilon``) -- which is what :func:`repro.network.multihop.run_multihop`
    surfaces when a hybrid run ends up taking zero fluid segments.
    """
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be positive: {horizon}")
    whole = [Segment(0.0, horizon, "packet")]
    if hybrid.epsilon <= 0:
        return whole
    forced: list[tuple[float, float]] = [
        (0.0, min(horizon, warmup + hybrid.spinup))
    ]
    for t in sorted(transients):
        if 0.0 < t < horizon:
            forced.append(
                (max(0.0, t - hybrid.guard), min(horizon, t + hybrid.guard))
            )
    forced.sort()
    merged = [list(forced[0])]
    for lo, hi in forced[1:]:
        if lo <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], hi)
        else:
            merged.append([lo, hi])

    segments: list[Segment] = []
    cursor = 0.0
    boundaries = merged + [[horizon, horizon]]
    for lo, hi in boundaries:
        if cursor < lo:  # gap between forced intervals: fluid candidate
            span = lo - cursor
            if span < hybrid.min_fluid:
                accept = False
                reason = (
                    f"gap [{cursor:g}, {lo:g}) spans {span:g} "
                    f"< min_fluid {hybrid.min_fluid:g}"
                )
            else:
                err = predicted_error(cursor, lo)
                accept = err <= hybrid.epsilon
                reason = (
                    ""
                    if accept
                    else (
                        f"gap [{cursor:g}, {lo:g}) predicted error "
                        f"{err:.4f} > epsilon {hybrid.epsilon:g}"
                    )
                )
            if report is not None:
                report.append(
                    {
                        "start": cursor,
                        "end": lo,
                        "span": span,
                        "accepted": accept,
                        "reason": reason,
                    }
                )
            segments.append(Segment(cursor, lo, "fluid" if accept else "packet"))
        cursor = max(cursor, min(hi, horizon))
        if cursor < horizon and hi >= lo and lo < horizon:
            start = max(lo, segments[-1].end if segments else 0.0)
            if start < cursor:
                segments.append(Segment(start, cursor, "packet"))
        if cursor >= horizon:
            break
    if not segments or segments[-1].end < horizon:
        segments.append(
            Segment(segments[-1].end if segments else 0.0, horizon, "packet")
        )
    # Coalesce adjacent same-mode segments.
    out: list[Segment] = []
    for seg in segments:
        if seg.span <= 0:
            continue
        if out and out[-1].mode == seg.mode and out[-1].end == seg.start:
            out[-1] = Segment(out[-1].start, seg.end, seg.mode)
        else:
            out.append(seg)
    return out or whole


# ----------------------------------------------------------------------
# Controller
# ----------------------------------------------------------------------
@dataclass
class _LinkFlux:
    """One link's evaluated fluid state within a window."""

    times: np.ndarray
    class_ids: np.ndarray
    sizes: np.ndarray
    phantom: np.ndarray  # True for carried-backlog bytes relayed downstream
    waits: np.ndarray
    departures: np.ndarray
    lindley_times: np.ndarray
    lindley_sizes: np.ndarray
    carried_total: float


class HybridController:
    """Drives one city cell through alternating packet/fluid segments.

    Network-wide: fluid segments cover *every* link of the topology
    (:func:`repro.scenarios.generators.city_link_graph`), propagating
    each link's fluid departure process into its downstream link, with
    per-link carried backlogs at the handoffs.  Owns the run's single
    :class:`DelayMonitor`: packet segments build a fresh topology (so
    no stale calendar state crosses a handoff) and attach it to the
    hub; fluid segments credit the hub's Eq 5 class means into the
    same streaming stats.  ``Simulator.run(hybrid=ctrl)`` delegates
    whole-run control here.
    """

    def __init__(
        self,
        config: "CityScenarioConfig",
        traces: Sequence["ArrivalTrace"],
    ) -> None:
        from ..scenarios.generators import city_link_graph

        hybrid = config.hybrid
        if hybrid is None:
            raise ConfigurationError("config.hybrid must be set")
        if hybrid.epsilon > 0 and not (
            config.scheduler == "strict" or _has_fluid_map(config.scheduler)
        ):
            raise ConfigurationError(
                f"no fluid map registered for scheduler "
                f"{config.scheduler!r}; supported: {fluid_supported()}; "
                f"register one via repro.sim.hybrid.register_fluid_map "
                f"or set epsilon=0 for pure packet"
            )
        self.config = config
        self.hybrid = hybrid
        self.traces = list(traces)
        self.graph = city_link_graph(config)
        self.hub_index = len(self.graph) - 1
        self.capacity = self.graph[self.hub_index].capacity
        self.monitor = DelayMonitor(config.num_classes, warmup=config.warmup)
        self.timeline: list[dict] = []
        self.demotions: list[dict] = []
        self.gap_reports: list[dict] = []
        self.packet_departures = 0
        self.fluid_credited = 0
        self.seeded_packets = 0
        self._carried: list[list[float]] = [
            [0.0] * config.num_classes for _ in self.graph
        ]
        # Packet-measured-only accumulators: calibration must come from
        # real departures, not from earlier fluid credits (which would
        # make the split model self-referential).
        self._packet_counts = [0] * config.num_classes
        self._packet_totals = [0.0] * config.num_classes
        self._last_delays: list[float] = [math.nan] * config.num_classes
        self._hub_trace: Optional["ArrivalTrace"] = None
        self._seed_serial = 0

    # -- derived inputs -------------------------------------------------
    @property
    def hub_trace(self) -> "ArrivalTrace":
        """All branch traces merged: the cell's offered arrival stream."""
        if self._hub_trace is None:
            from ..traffic.trace import ArrivalTrace, merge_traces

            live = [t for t in self.traces if len(t)]
            if live:
                self._hub_trace = merge_traces(live)
            else:
                empty = np.empty(0)
                self._hub_trace = ArrivalTrace(
                    empty, np.empty(0, dtype=np.int64), empty.copy()
                )
        return self._hub_trace

    def plan(self, horizon: float) -> list[Segment]:
        """The segment plan for this cell (envelope-driven)."""
        from ..traffic.compile import RateEnvelope

        trace = self.hub_trace
        envelope = RateEnvelope.from_arrays(
            trace.times, trace.class_ids, trace.sizes,
            horizon, self.hybrid.bin_width, self.config.num_classes,
        )
        agg = envelope.aggregate_byte_rates()
        edges = envelope.edges

        def predicted_error(t0: float, t1: float) -> float:
            # Coefficient of variation of the window's aggregate byte
            # rate over ~8 coarse chunks.  Coarse on purpose: the
            # aggregate inside a fluid window is an *exact* Lindley
            # replay, so fine-timescale burstiness costs nothing --
            # only macroscopic rate drift (non-stationarity) degrades
            # the per-class split model, and that is what chunk-scale
            # CV measures, independent of the envelope bin width.
            lo = bisect_right(edges.tolist(), t0) - 1
            hi = max(lo + 1, bisect_left(edges.tolist(), t1))
            window = agg[max(lo, 0) : hi]
            if not len(window):
                return 0.0  # an idle stretch drains analytically
            chunks = np.array_split(window, min(8, len(window)))
            means = np.array([float(chunk.mean()) for chunk in chunks])
            grand = float(means.mean())
            if grand <= 0:
                return 0.0
            return float(means.std()) / grand

        transients = list(envelope.change_points(self.hybrid.rate_jump))
        transients.extend(self.config.load_shape.transient_edges(horizon))
        report: list[dict] = []
        segments = plan_segments(
            horizon, self.config.warmup, self.hybrid, transients,
            predicted_error, report=report,
        )
        self.gap_reports = report
        return segments

    # -- run ------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> "HybridController":
        """Execute the plan up to ``until`` (default: the horizon)."""
        horizon = self.config.horizon if until is None else min(
            until, self.config.horizon
        )
        plan = self.plan(horizon)
        cursor = 0.0
        for index, segment in enumerate(plan):
            if cursor >= segment.end:
                continue
            start = max(cursor, segment.start)
            next_is_fluid = (
                index + 1 < len(plan) and plan[index + 1].mode == "fluid"
            )
            if segment.mode == "fluid":
                handoff = self._run_fluid(start, segment.end)
                if handoff is None:  # envelope demotion
                    cursor = self._run_packet(start, segment.end, next_is_fluid)
                else:
                    cursor = handoff
            else:
                cursor = self._run_packet(start, segment.end, next_is_fluid)
        return self

    # -- packet segments ------------------------------------------------
    def _run_packet(self, start: float, end: float, seek_regen: bool) -> float:
        """One packet-mode segment on a fresh topology; returns the
        actual handoff time (``end``, or the idle instant past it)."""
        from ..scenarios.generators import build_city_topology
        from ..traffic.trace import ArrivalTrace, TraceSource

        config = self.config
        sim = Simulator()
        entries, links, hub = build_city_topology(sim, config)
        hub.add_monitor(self.monitor)
        by_name = {link.name: link for link in links}

        for idx, spec in enumerate(self.graph):
            carried = self._carried[idx]
            if sum(carried) <= 0:
                continue
            hints = (
                self._last_delays
                if idx == self.hub_index
                else [sum(carried) / spec.capacity] * config.num_classes
            )
            seeds = self._build_seeds(start, carried, hints, spec.capacity)
            if seeds:
                sim.schedule(start, by_name[spec.name].seed_backlog, seeds)
        # Feed each branch its slice; extend past the boundary by the
        # regeneration search window so the handoff has live traffic.
        feed_end = end + (self.hybrid.regen_window if seek_regen else 0.0)
        fed = 0
        for branch, trace in enumerate(self.traces):
            lo = int(np.searchsorted(trace.times, start, side="left"))
            hi = int(np.searchsorted(trace.times, feed_end, side="left"))
            if hi <= lo:
                continue
            piece = ArrivalTrace(
                trace.times[lo:hi], trace.class_ids[lo:hi], trace.sizes[lo:hi]
            )
            TraceSource(
                sim, entries[branch], piece,
                first_packet_id=branch * 10_000_000,
            ).start()
            fed += hi - lo

        departures_before = hub.departures
        stats_before = [
            (s.count, s.total) for s in self.monitor.stats
        ]
        sim.run(until=end)
        handoff = end
        self._carried = [[0.0] * config.num_classes for _ in self.graph]
        if seek_regen:
            deadline = end + self.hybrid.regen_window
            while any(link.busy for link in links):
                key = sim.peek_key()
                if key is None or key[0] > deadline:
                    break
                sim.step()
            if any(link.busy for link in links):
                # No regeneration point: read each link's backlog out.
                handoff = max(sim.now, end)
                for idx, spec in enumerate(self.graph):
                    self._carried[idx] = list(
                        by_name[spec.name].backlog_snapshot(handoff)
                    )
            else:
                handoff = max(sim.now, end)
        self.packet_departures += hub.departures - departures_before
        for cid, (count0, total0) in enumerate(stats_before):
            stats = self.monitor.stats[cid]
            self._packet_counts[cid] += stats.count - count0
            self._packet_totals[cid] += stats.total - total0
        self.timeline.append(
            {
                "mode": "packet",
                "start": start,
                "end": handoff,
                "arrivals": fed,
                "seeded": self._seed_serial,
            }
        )
        return handoff

    def _build_seeds(
        self,
        start: float,
        carried: Sequence[float],
        delay_hints: Sequence[float],
        capacity: float,
    ) -> list[Packet]:
        """Materialize one link's carried fluid backlog as synthetic
        packets.

        Per class, the backlog becomes ``round(q / mean_size)`` equal
        packets whose arrival stamps are backdated over the class's
        estimated delay -- the age profile a FIFO queue in steady state
        would show -- so head-age schedulers resume with sane
        priorities and the seeds' measured delays reproduce the fluid
        estimate they came from.
        """
        trace = self.hub_trace
        packets: list[Packet] = []
        for cid, backlog in enumerate(carried):
            if backlog <= 0:
                continue
            class_sizes = trace.sizes[trace.class_ids == cid]
            mean_size = float(class_sizes.mean()) if len(class_sizes) else 1000.0
            count = max(1, int(round(backlog / mean_size)))
            size = backlog / count
            est = delay_hints[cid]
            if not math.isfinite(est) or est <= 0:
                est = backlog / capacity
            for k in range(count):
                arrived = start - est + est * (k + 1.0) / (count + 1.0)
                packet = Packet(
                    packet_id=990_000_000 + self._seed_serial,
                    class_id=cid,
                    size=size,
                    created_at=arrived,
                )
                self._seed_serial += 1
                packets.append(packet)
        packets.sort(key=lambda p: p.arrived_at)
        self.seeded_packets += len(packets)
        return packets

    # -- fluid segments -------------------------------------------------
    def _calibration(self) -> Optional[list[float]]:
        """Measured per-class means, once every class has enough
        packet-mode samples to trust.  Only *packet-measured*
        departures count: folding earlier fluid credits back in would
        calibrate the split model against itself."""
        if all(n >= _CALIBRATION_SAMPLES for n in self._packet_counts):
            means = [
                total / n
                for total, n in zip(self._packet_totals, self._packet_counts)
            ]
            if all(math.isfinite(m) and m > 0 for m in means):
                return means
        return None

    def _evaluate_links(
        self, start: float, end: float
    ) -> tuple[list[_LinkFlux], np.ndarray]:
        """Walk the link graph in topological order, turning each
        link's Lindley departure process into its downstream link's
        arrival process.  Returns per-link flux plus the merged
        external arrival times (the regeneration-cut candidates).

        Bytes are conserved across the walk: departures at or after
        ``end`` stay in the upstream link's terminal backlog (they have
        not reached the next queue yet), and carried-in backlog drains
        downstream as *phantom* arrivals -- real bytes that must load
        the downstream Lindley walk but were already credited (or
        seeded) in an earlier segment, so the hub excludes them from
        the per-class delay statistics.
        """
        from ..core.conservation import fcfs_waiting_times

        span = end - start
        pieces: list[list[tuple]] = [[] for _ in self.graph]
        ext_times: list[np.ndarray] = []
        for idx, spec in enumerate(self.graph):
            for b in spec.branches:
                tr = self.traces[b]
                lo = int(np.searchsorted(tr.times, start, side="left"))
                hi = int(np.searchsorted(tr.times, end, side="left"))
                if hi > lo:
                    pieces[idx].append(
                        (
                            tr.times[lo:hi],
                            tr.class_ids[lo:hi],
                            tr.sizes[lo:hi],
                            None,
                        )
                    )
                    ext_times.append(tr.times[lo:hi])

        fluxes: list[_LinkFlux] = []
        for idx, spec in enumerate(self.graph):
            parts = pieces[idx]
            if parts:
                times = np.concatenate([p[0] for p in parts])
                cids = np.concatenate([p[1] for p in parts])
                sizes = np.concatenate([p[2] for p in parts])
                phantom = np.concatenate(
                    [
                        p[3]
                        if p[3] is not None
                        else np.zeros(len(p[0]), dtype=bool)
                        for p in parts
                    ]
                )
                if len(parts) > 1:
                    order = np.argsort(times, kind="stable")
                    times = times[order]
                    cids = cids[order]
                    sizes = sizes[order]
                    phantom = phantom[order]
            else:
                times = np.empty(0)
                cids = np.empty(0, dtype=np.int64)
                sizes = np.empty(0)
                phantom = np.empty(0, dtype=bool)

            carried = self._carried[idx]
            carried_total = float(sum(carried))
            if carried_total > 0:
                lt = np.concatenate(([start], times))
                ls = np.concatenate(([carried_total], sizes))
                offset = 1
            else:
                lt = times
                ls = sizes
                offset = 0
            waits_all = (
                fcfs_waiting_times(lt, ls, spec.capacity)
                if len(lt)
                else np.empty(0)
            )
            waits = waits_all[offset:]
            deps = (
                times + waits + sizes / spec.capacity
                if len(times)
                else np.empty(0)
            )
            fluxes.append(
                _LinkFlux(
                    times=times,
                    class_ids=cids,
                    sizes=sizes,
                    phantom=phantom,
                    waits=waits,
                    departures=deps,
                    lindley_times=lt,
                    lindley_sizes=ls,
                    carried_total=carried_total,
                )
            )
            if spec.downstream is None:
                continue
            # Departures within the window feed the downstream link;
            # later ones remain in this link's terminal backlog.
            if len(times):
                mask = deps < end
                if mask.any():
                    pieces[spec.downstream].append(
                        (deps[mask], cids[mask], sizes[mask], phantom[mask])
                    )
            if carried_total > 0:
                # Carried bytes sit at the head of the FCFS order, so
                # exactly min(carried, span * C) of them drain into the
                # downstream link during the window.
                drained = min(carried_total, span * spec.capacity)
                if drained > 0:
                    vdep = min(
                        start + carried_total / spec.capacity,
                        np.nextafter(end, start),
                    )
                    frac = drained / carried_total
                    pt, pc, ps = [], [], []
                    for cid, q in enumerate(carried):
                        if q > 0:
                            pt.append(vdep)
                            pc.append(cid)
                            ps.append(q * frac)
                    pieces[spec.downstream].append(
                        (
                            np.asarray(pt),
                            np.asarray(pc, dtype=np.int64),
                            np.asarray(ps),
                            np.ones(len(pt), dtype=bool),
                        )
                    )
        merged_ext = (
            np.sort(np.concatenate(ext_times)) if ext_times else np.empty(0)
        )
        return fluxes, merged_ext

    def _find_network_cut(
        self, fluxes: list[_LinkFlux], ext_times: np.ndarray,
        start: float, end: float,
    ) -> Optional[float]:
        """Latest external arrival in the regeneration window at which
        the *whole network* is idle (every link's prior departures have
        completed) -- the exact fluid->packet handoff."""
        window = self.hybrid.regen_window
        if window <= 0 or not len(ext_times):
            return None
        lo = int(np.searchsorted(ext_times, end - window, side="left"))
        candidates = ext_times[lo:]
        for t in candidates[::-1][:128]:
            t = float(t)
            idle = True
            for spec, flux in zip(self.graph, fluxes):
                if flux.carried_total > 0:
                    vdep = start + flux.carried_total / spec.capacity
                    if vdep > t:
                        idle = False
                        break
                k = int(np.searchsorted(flux.times, t, side="left")) - 1
                if k >= 0 and float(flux.departures[k]) > t:
                    idle = False
                    break
            if idle:
                return t
        return None

    def _run_fluid(self, start: float, end: float) -> Optional[float]:
        """One network-wide fluid segment; returns the actual handoff
        time, or ``None`` when an envelope violation demotes the
        segment back to packet mode."""
        config = self.config
        num_classes = config.num_classes
        hub_idx = self.hub_index
        fluxes, ext_times = self._evaluate_links(start, end)
        cut = self._find_network_cut(fluxes, ext_times, start, end)

        hub = fluxes[hub_idx]
        hub_stop = (
            int(np.searchsorted(hub.times, cut, side="left"))
            if cut is not None
            else len(hub.times)
        )
        real = ~hub.phantom[:hub_stop]
        htimes = hub.times[:hub_stop][real]
        hcids = hub.class_ids[:hub_stop][real]
        hsizes = hub.sizes[:hub_stop][real]
        hwaits = hub.waits[:hub_stop][real]
        counts = np.bincount(hcids, minlength=num_classes).tolist()
        d_agg = float(hwaits.mean()) if len(hwaits) else math.nan
        span = (cut if cut is not None else end) - start

        if config.scheduler == "strict":
            delays = _strict_subset_delays(
                htimes, hcids, hsizes, num_classes, self.capacity,
                start, self._carried[hub_idx],
            )
        else:
            class_bytes = np.bincount(
                hcids, weights=hsizes, minlength=num_classes
            ).tolist()
            delays = fluid_split(
                config.scheduler, config.sdps, counts, d_agg,
                calibration=self._calibration(),
                class_bytes=class_bytes, span=span, capacity=self.capacity,
            )

        violation = check_fluid_envelopes(
            config.scheduler, config.sdps, delays, counts,
            hwaits, htimes, hcids, hsizes, self.capacity, span,
        )
        if violation is not None:
            self.demotions.append(
                {"start": start, "end": end, "reason": violation}
            )
            return None

        credited = 0
        for cid, (n, d) in enumerate(zip(counts, delays)):
            if n and math.isfinite(d):
                stats = self.monitor.stats[cid]
                stats.count += n
                stats.total += n * d
                stats.total_sq += n * d * d
                if d < stats.min:
                    stats.min = d
                if d > stats.max:
                    stats.max = d
                credited += n
                self._last_delays[cid] = d

        if cut is not None:
            handoff = cut
            deferred = int(len(ext_times) - np.searchsorted(ext_times, cut))
            self._carried = [[0.0] * num_classes for _ in self.graph]
            regenerated = True
        else:
            handoff = end
            deferred = 0
            regenerated = False
            for idx, (spec, flux) in enumerate(zip(self.graph, fluxes)):
                terminal = _terminal_workload(
                    flux.lindley_times, flux.lindley_sizes,
                    spec.capacity, end,
                ) * spec.capacity
                link_counts = np.bincount(
                    flux.class_ids, minlength=num_classes
                ).tolist()
                weight_delays = delays if idx == hub_idx else [1.0] * num_classes
                self._carried[idx] = _split_backlog(
                    terminal, link_counts, flux.sizes, flux.class_ids,
                    weight_delays, self._carried[idx], num_classes,
                )

        self.fluid_credited += credited
        self.timeline.append(
            {
                "mode": "fluid",
                "start": start,
                "end": handoff,
                "arrivals": credited,
                "deferred": deferred,
                "regenerated": regenerated,
                "d_agg": d_agg,
                "links": len(self.graph),
            }
        )
        return handoff

    # -- reporting ------------------------------------------------------
    def summary(self) -> dict:
        """Mode-timeline roll-up for the cell summary."""
        fluid_span = sum(
            t["end"] - t["start"] for t in self.timeline if t["mode"] == "fluid"
        )
        total_span = self.timeline[-1]["end"] if self.timeline else 0.0
        return {
            "epsilon": self.hybrid.epsilon,
            "segments": len(self.timeline),
            "fluid_time_fraction": (
                fluid_span / total_span if total_span else 0.0
            ),
            "packet_departures": self.packet_departures,
            "fluid_credited": self.fluid_credited,
            "seeded_packets": self.seeded_packets,
            "links": len(self.graph),
            "demotions": list(self.demotions),
            "gaps": list(self.gap_reports),
            "timeline": self.timeline,
        }


def run_hybrid_city(
    config: "CityScenarioConfig", traces: Sequence["ArrivalTrace"]
) -> HybridController:
    """Run one city cell through the hybrid engine.

    The entry point :func:`repro.scenarios.city.city_summary` uses when
    a cell carries a :class:`HybridConfig` with ``epsilon > 0``; the
    engine-level wiring goes through ``Simulator.run(hybrid=...)``.
    """
    controller = HybridController(config, traces)
    sim = Simulator()
    sim.run(until=config.horizon, hybrid=controller)
    return controller
