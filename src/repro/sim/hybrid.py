"""Hybrid fluid/packet engine: fluid fast-forward between transients.

The paper's steady-state results describe exactly the regimes where
packet-by-packet simulation is the wrong altitude.  During a "boring"
interval -- no source onsets/offsets, no load-shape edges, no sustained
rate jump -- the hub's *aggregate* behaviour is fully determined by its
arrival trace through the FCFS workload process, and the per-class
split is pinned by the conservation law:

    sum_i lambda_i * d_i = lambda * d(lambda)                    (Eq 5)

so a fluid segment needs no event loop at all:

* **Aggregate (exact).**  The mean aggregate queueing delay over the
  segment is the Lindley recursion over the segment's arrivals
  (:func:`~repro.core.conservation.fcfs_waiting_times`) -- a vectorized
  O(n) numpy pass instead of ~n heap events, which is where the >=10x
  wall-clock comes from.  Carried-in backlog enters as one virtual
  arrival of the backlog's total bytes at the segment start, so the
  workload trajectory (including its terminal value, the carried-out
  backlog) is exact, not an ODE discretization.
* **Per-class (model).**  The aggregate mean is distributed across
  classes by a scheduler-specific *fluid map* that satisfies Eq 5
  exactly: equal delays for FCFS, inverse-SDP proportional delays for
  WTP and BPR (Eq 6, the proportional model both approach in heavy
  load), and the successive-subset decomposition for strict priority
  (class-filtered Lindley replays, the Eq 7 telescope).  Once the run
  has packet-measured per-class means (the calibration spin-up), the
  map switches to *measured* split coefficients projected back onto
  Eq 5 -- self-calibrating to the scheduler's actual differentiation
  at the operating point.
* **Arrival-free stretches** drain analytically: BPR through
  :class:`~repro.schedulers.bpr.FluidBPRTracker` (Proposition 1's
  closed form), strict priority top-down, FCFS/WTP proportionally,
  with :func:`~repro.schedulers.bpr.fluid_clearing_time` bounding the
  drain.

Packet mode runs the ordinary drain-kernel simulation on the real
topology around every transient: startup + warm-up + calibration,
guard bands at each envelope change point and load-shape edge, and any
stretch whose *predicted fluid error* -- the coefficient of variation
of the binned aggregate rate, a direct stationarity measure -- exceeds
the error-bound knob ``epsilon``.  ``epsilon = 0`` therefore forces
packet mode everywhere and the controller short-circuits to the
unmodified pure-packet path (bit-identical to an evented run by
construction; asserted in :mod:`tests.differential`).

Handoff contract (see DESIGN.md):

* **packet -> fluid** happens at a *regeneration point*: the packet
  segment is extended past its planned boundary until every link goes
  idle (at rho < 1 busy periods end quickly), so the fluid segment
  starts from zero backlog -- an exact handoff.  If no idle instant
  appears within ``regen_window`` (sustained overload), the per-class
  backlog is read from the queues via
  :meth:`~repro.sim.link.Link.backlog_snapshot` and carried into the
  fluid state.
* **fluid -> packet** symmetrically prefers the last Lindley
  zero-wait arrival near the boundary (idle handoff, empty queues);
  otherwise the terminal fluid backlog is materialized as synthetic
  packets with backdated arrivals reflecting the fluid delay estimate
  and injected through :meth:`~repro.sim.link.Link.seed_backlog`.

Wall-clock wiring: :meth:`Simulator.run(hybrid=...)
<repro.sim.engine.Simulator.run>` delegates a whole run to a
:class:`HybridController`; :func:`repro.scenarios.city.city_summary`
builds one when the cell config carries a :class:`HybridConfig`;
``repro.cli city --hybrid`` and the :class:`ShardRunner` sweeps flow
through that config field (which also lands in the runner cache
fingerprint automatically -- hybrid and pure cells never collide).
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

# NOTE: repro.core.conservation and repro.schedulers.bpr are imported
# lazily inside the functions that use them: repro.core pulls in
# repro.traffic, which pulls in this package's __init__ -- a top-level
# import here would close that cycle during interpreter start-up.
from ..errors import ConfigurationError
from .engine import Simulator
from .monitor import DelayMonitor
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scenarios.city import CityScenarioConfig
    from ..traffic.trace import ArrivalTrace

__all__ = [
    "FLUID_SCHEDULERS",
    "HybridConfig",
    "Segment",
    "FluidWindowResult",
    "fluid_split",
    "fluid_window",
    "drain_idle",
    "plan_segments",
    "HybridController",
    "run_hybrid_city",
]

#: Schedulers with a defined fluid per-class delay map.
FLUID_SCHEDULERS = ("fcfs", "wtp", "bpr", "strict")

#: Packet-measured samples per class required before the calibrated
#: (measured-split) fluid map replaces the analytic one.
_CALIBRATION_SAMPLES = 50


@dataclass(frozen=True)
class HybridConfig:
    """Hybrid-engine knobs.  Time fields share the scenario's unit (ms).

    ``epsilon`` is the error-bound knob: a candidate fluid stretch runs
    in fluid mode only when its predicted error -- the coefficient of
    variation of the binned aggregate arrival rate, a stationarity
    proxy validated against full packet-level golden runs -- stays at
    or below ``epsilon``.  ``epsilon = 0`` rejects every stretch and
    the run short-circuits to the unmodified pure-packet path.
    """

    epsilon: float = 0.05
    #: Envelope bin width for rate estimation and transient detection.
    bin_width: float = 250.0
    #: Relative aggregate-rate jump flagged as a transient.
    rate_jump: float = 0.25
    #: Packet-mode guard band on each side of every transient.
    guard: float = 500.0
    #: Packet-mode calibration span after warm-up (measures the
    #: per-class split the calibrated fluid map projects onto Eq 5).
    spinup: float = 2000.0
    #: Minimum span worth switching to fluid for.
    min_fluid: float = 2000.0
    #: How far past a boundary to search for an idle regeneration
    #: instant before falling back to backlog seeding.
    regen_window: float = 500.0

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ConfigurationError(
                f"epsilon must be non-negative: {self.epsilon}"
            )
        for name in ("bin_width", "rate_jump", "spinup", "min_fluid"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        for name in ("guard", "regen_window"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


@dataclass(frozen=True)
class Segment:
    """One planned interval of the run, in one mode."""

    start: float
    end: float
    mode: str  # "packet" | "fluid"

    @property
    def span(self) -> float:
        return self.end - self.start


@dataclass
class FluidWindowResult:
    """Outcome of one fluid window evaluation."""

    d_agg: float
    delays: list[float]
    counts: list[int]
    end_backlogs: list[float]
    #: Where the window actually ended: the boundary, or an earlier
    #: idle regeneration instant when one was requested and found.
    handoff_time: float
    #: True when the window ended at an idle instant (empty handoff).
    regenerated: bool
    #: Arrivals NOT consumed (deferred past ``handoff_time``).
    deferred: int = 0


# ----------------------------------------------------------------------
# Fluid per-class delay maps (Eq 5)
# ----------------------------------------------------------------------
def fluid_split(
    scheduler: str,
    sdps: Sequence[float],
    counts: Sequence[int],
    d_agg: float,
    calibration: Optional[Sequence[float]] = None,
) -> list[float]:
    """Per-class mean delays satisfying Eq 5 for a stationary window.

    The aggregate mean ``d_agg`` (exact, from the Lindley replay) is
    split as ``d_i = c_i * K`` with ``K`` chosen so that
    ``sum_i n_i d_i = n * d_agg`` holds exactly.  The split
    coefficients ``c_i`` are the *measured* per-class means when a
    calibration vector is supplied (projecting the scheduler's actual
    differentiation onto the conservation law), else the analytic
    fluid model: ``1`` for FCFS (one shared queueing delay) and
    ``1/s_i`` for WTP and BPR (Eq 6's proportional model, which both
    schedulers approach in heavy load -- BPR exactly in the fluid
    limit of Proposition 1).  Strict priority has no rate-free split
    and is handled by :func:`fluid_window` via successive subsets.
    """
    if scheduler == "strict":
        raise ConfigurationError(
            "strict priority needs the successive-subset map; "
            "use fluid_window"
        )
    if scheduler not in FLUID_SCHEDULERS:
        raise ConfigurationError(
            f"no fluid map for scheduler {scheduler!r}; "
            f"choose from {FLUID_SCHEDULERS}"
        )
    if len(counts) != len(sdps):
        raise ConfigurationError("one arrival count per class required")
    if calibration is not None:
        coeffs = [float(c) for c in calibration]
        if len(coeffs) != len(sdps) or any(
            not math.isfinite(c) or c <= 0 for c in coeffs
        ):
            raise ConfigurationError(
                f"calibration must be positive and finite per class: {coeffs}"
            )
    elif scheduler == "fcfs":
        coeffs = [1.0] * len(sdps)
    else:  # wtp / bpr: proportional model, d_i proportional to 1/s_i
        coeffs = [1.0 / s for s in sdps]
    weighted = sum(n * c for n, c in zip(counts, coeffs))
    total = sum(counts)
    if total == 0 or weighted <= 0:
        return [math.nan] * len(sdps)
    scale = total * d_agg / weighted
    return [c * scale for c in coeffs]


def drain_idle(
    scheduler: str,
    sdps: Sequence[float],
    capacity: float,
    backlogs: Sequence[float],
    span: float,
) -> list[float]:
    """Advance carried backlogs through an arrival-free fluid stretch.

    BPR follows Proposition 1's closed form
    (:class:`~repro.schedulers.bpr.FluidBPRTracker`); strict priority
    depletes top class down; FCFS and WTP drain proportionally (the
    uniform-theta fluid, exact for FCFS backlog whose per-class
    composition is uniform in arrival order).  All disciplines clear
    simultaneously at :func:`fluid_clearing_time` -- work conservation
    fixes the total; only the per-class composition differs.
    """
    from ..schedulers.bpr import FluidBPRTracker, fluid_clearing_time

    if span < 0:
        raise ConfigurationError(f"span must be non-negative: {span}")
    backlogs = [float(q) for q in backlogs]
    total = sum(backlogs)
    if total <= 0:
        return [0.0] * len(backlogs)
    if span >= fluid_clearing_time(backlogs, capacity):
        return [0.0] * len(backlogs)
    if scheduler == "bpr":
        tracker = FluidBPRTracker(sdps, capacity)
        for cid, amount in enumerate(backlogs):
            tracker.add_fluid(cid, amount)
        tracker.advance(span)
        return list(tracker.backlogs)
    if scheduler == "strict":
        budget = capacity * span
        out = list(backlogs)
        for cid in range(len(out) - 1, -1, -1):
            served = min(out[cid], budget)
            out[cid] -= served
            budget -= served
            if budget <= 0:
                break
        return out
    drained_fraction = 1.0 - capacity * span / total
    return [q * drained_fraction for q in backlogs]


# ----------------------------------------------------------------------
# Fluid window evaluation
# ----------------------------------------------------------------------
def _terminal_workload(
    times: np.ndarray, sizes: np.ndarray, capacity: float, end: float
) -> float:
    """Unfinished work (time units) of a FCFS server at ``end``.

    ``V(end) = max(0, max_k (sum_{j>=k} S_j / C - (end - t_k)))`` --
    the reversed-cumsum dual of the Lindley walk, exact for any
    work-conserving discipline (the workload process is
    discipline-independent).
    """
    if not len(times):
        return 0.0
    tail_work = np.cumsum((sizes / capacity)[::-1])[::-1]
    return float(max(0.0, (tail_work - (end - times)).max()))


def fluid_window(
    times: np.ndarray,
    class_ids: np.ndarray,
    sizes: np.ndarray,
    num_classes: int,
    capacity: float,
    start: float,
    end: float,
    scheduler: str,
    sdps: Sequence[float],
    carried: Sequence[float],
    calibration: Optional[Sequence[float]] = None,
    regen_window: float = 0.0,
) -> FluidWindowResult:
    """Evaluate one fluid segment over the arrivals in ``[start, end)``.

    ``times``/``class_ids``/``sizes`` are the segment's slice of the
    monitored link's offered trace; ``carried`` is the per-class byte
    backlog handed over at ``start``.  With ``regen_window > 0`` the
    window prefers to *end early* at the last idle (zero-wait) arrival
    within ``regen_window`` of ``end``: arrivals at and after that
    instant are deferred to the following packet segment, which then
    starts from genuinely empty queues.
    """
    from ..core.conservation import fcfs_waiting_times

    if scheduler not in FLUID_SCHEDULERS:
        raise ConfigurationError(
            f"no fluid map for scheduler {scheduler!r}; "
            f"choose from {FLUID_SCHEDULERS}"
        )
    carried = [float(q) for q in carried]
    if len(carried) != num_classes:
        raise ConfigurationError("one carried backlog per class required")
    carried_total = sum(carried)
    empty = [0.0] * num_classes
    if not len(times):
        drained = drain_idle(scheduler, sdps, capacity, carried, end - start)
        return FluidWindowResult(
            d_agg=math.nan,
            delays=[math.nan] * num_classes,
            counts=[0] * num_classes,
            end_backlogs=drained,
            handoff_time=end,
            regenerated=sum(drained) == 0.0,
        )

    # Aggregate Lindley replay; carried backlog enters as one virtual
    # arrival of its total bytes at the window start.
    if carried_total > 0:
        lindley_times = np.concatenate(([start], times))
        lindley_sizes = np.concatenate(([carried_total], sizes))
        offset = 1
    else:
        lindley_times = times
        lindley_sizes = sizes
        offset = 0
    waits = fcfs_waiting_times(lindley_times, lindley_sizes, capacity)

    # Regeneration: last real arrival with zero wait near the boundary
    # (the Lindley walk hits an exact float 0.0 at every new minimum).
    cut = len(times)
    regenerated = False
    if regen_window > 0:
        lo = int(np.searchsorted(times, end - regen_window, side="left"))
        zero = np.flatnonzero(waits[offset + lo :] == 0.0)
        if len(zero):
            cut = lo + int(zero[-1])
            regenerated = True

    real_waits = waits[offset : offset + cut]
    window_classes = class_ids[:cut]
    counts = np.bincount(window_classes, minlength=num_classes).tolist()
    d_agg = float(real_waits.mean()) if cut else math.nan

    if scheduler == "strict":
        delays = _strict_subset_delays(
            times[:cut], window_classes, sizes[:cut],
            num_classes, capacity, start, carried,
        )
    else:
        delays = fluid_split(scheduler, sdps, counts, d_agg, calibration)

    if regenerated:
        return FluidWindowResult(
            d_agg=d_agg,
            delays=delays,
            counts=counts,
            end_backlogs=empty,
            handoff_time=float(times[cut]),
            regenerated=True,
            deferred=len(times) - cut,
        )
    terminal = _terminal_workload(lindley_times, lindley_sizes, capacity, end)
    return FluidWindowResult(
        d_agg=d_agg,
        delays=delays,
        counts=counts,
        end_backlogs=_split_backlog(
            terminal * capacity, counts, sizes, window_classes,
            delays, carried, num_classes,
        ),
        handoff_time=end,
        regenerated=False,
    )


def _strict_subset_delays(
    times: np.ndarray,
    class_ids: np.ndarray,
    sizes: np.ndarray,
    num_classes: int,
    capacity: float,
    start: float,
    carried: Sequence[float],
) -> list[float]:
    """Strict-priority per-class means via successive subsets (Eq 7).

    Higher class id preempts lower (non-preemptively) here, so class
    ``i`` sees exactly the FCFS system of classes ``>= i``:
    ``n_i d_i = R_{>=i} - R_{>i}`` with ``R_{>=i}`` the total wait of
    the subset replay -- Eq 5 holds per subset, so the per-class
    telescope is conservation-exact by construction.
    """
    from ..core.conservation import fcfs_waiting_times

    totals = [0.0] * (num_classes + 1)
    for lowest in range(num_classes - 1, -1, -1):
        mask = class_ids >= lowest
        sub_times = times[mask]
        sub_sizes = sizes[mask]
        carried_sub = sum(carried[lowest:])
        if carried_sub > 0:
            sub_times = np.concatenate(([start], sub_times))
            sub_sizes = np.concatenate(([carried_sub], sub_sizes))
            waits = fcfs_waiting_times(sub_times, sub_sizes, capacity)[1:]
        else:
            waits = fcfs_waiting_times(sub_times, sub_sizes, capacity)
        totals[lowest] = float(waits.sum())
    counts = np.bincount(class_ids, minlength=num_classes)
    delays = []
    for cid in range(num_classes):
        if counts[cid]:
            # Clamp: subset totals are each exact but their difference
            # can go slightly negative on near-empty classes.
            delays.append(max(totals[cid] - totals[cid + 1], 0.0) / counts[cid])
        else:
            delays.append(math.nan)
    return delays


def _split_backlog(
    total_bytes: float,
    counts: Sequence[int],
    sizes: np.ndarray,
    class_ids: np.ndarray,
    delays: Sequence[float],
    carried: Sequence[float],
    num_classes: int,
) -> list[float]:
    """Per-class composition of a terminal backlog (Little's-law split:
    waiting bytes of class i scale with its byte rate times its delay;
    falls back to the carried proportions, then uniform)."""
    if total_bytes <= 0:
        return [0.0] * num_classes
    weights = []
    for cid in range(num_classes):
        byte_mass = float(sizes[class_ids == cid].sum()) if counts[cid] else 0.0
        d = delays[cid]
        weights.append(byte_mass * d if byte_mass and math.isfinite(d) else 0.0)
    if sum(weights) <= 0:
        weights = [float(q) for q in carried]
    if sum(weights) <= 0:
        weights = [1.0] * num_classes
    scale = total_bytes / sum(weights)
    return [w * scale for w in weights]


# ----------------------------------------------------------------------
# Segment planner
# ----------------------------------------------------------------------
def plan_segments(
    horizon: float,
    warmup: float,
    hybrid: HybridConfig,
    transients: Sequence[float],
    predicted_error: Callable[[float, float], float],
) -> list[Segment]:
    """Alternating packet/fluid plan for ``[0, horizon)``.

    Packet mode is forced on ``[0, warmup + spinup]`` (startup +
    warm-up edge + calibration) and on ``guard``-wide bands around
    every transient; the gaps between forced intervals become fluid
    *candidates*, accepted only when they span at least ``min_fluid``
    and ``predicted_error(t0, t1) <= epsilon``.  With ``epsilon = 0``
    the single returned segment is pure packet.
    """
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be positive: {horizon}")
    whole = [Segment(0.0, horizon, "packet")]
    if hybrid.epsilon <= 0:
        return whole
    forced: list[tuple[float, float]] = [
        (0.0, min(horizon, warmup + hybrid.spinup))
    ]
    for t in sorted(transients):
        if 0.0 < t < horizon:
            forced.append(
                (max(0.0, t - hybrid.guard), min(horizon, t + hybrid.guard))
            )
    forced.sort()
    merged = [list(forced[0])]
    for lo, hi in forced[1:]:
        if lo <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], hi)
        else:
            merged.append([lo, hi])

    segments: list[Segment] = []
    cursor = 0.0
    boundaries = merged + [[horizon, horizon]]
    for lo, hi in boundaries:
        if cursor < lo:  # gap between forced intervals: fluid candidate
            accept = (
                lo - cursor >= hybrid.min_fluid
                and predicted_error(cursor, lo) <= hybrid.epsilon
            )
            segments.append(Segment(cursor, lo, "fluid" if accept else "packet"))
        cursor = max(cursor, min(hi, horizon))
        if cursor < horizon and hi >= lo and lo < horizon:
            start = max(lo, segments[-1].end if segments else 0.0)
            if start < cursor:
                segments.append(Segment(start, cursor, "packet"))
        if cursor >= horizon:
            break
    if not segments or segments[-1].end < horizon:
        segments.append(
            Segment(segments[-1].end if segments else 0.0, horizon, "packet")
        )
    # Coalesce adjacent same-mode segments.
    out: list[Segment] = []
    for seg in segments:
        if seg.span <= 0:
            continue
        if out and out[-1].mode == seg.mode and out[-1].end == seg.start:
            out[-1] = Segment(out[-1].start, seg.end, seg.mode)
        else:
            out.append(seg)
    return out or whole


# ----------------------------------------------------------------------
# Controller
# ----------------------------------------------------------------------
class HybridController:
    """Drives one city cell through alternating packet/fluid segments.

    Owns the run's single :class:`DelayMonitor`: packet segments build
    a fresh topology (so no stale calendar state crosses a handoff)
    and attach it to the hub; fluid segments credit their Eq 5 class
    means into the same streaming stats.  ``Simulator.run(hybrid=ctrl)``
    delegates whole-run control here.
    """

    def __init__(
        self,
        config: "CityScenarioConfig",
        traces: Sequence["ArrivalTrace"],
    ) -> None:
        from ..scenarios.generators import total_byte_rate

        hybrid = config.hybrid
        if hybrid is None:
            raise ConfigurationError("config.hybrid must be set")
        if hybrid.epsilon > 0 and config.scheduler not in FLUID_SCHEDULERS:
            raise ConfigurationError(
                f"hybrid fluid maps exist only for {FLUID_SCHEDULERS}; "
                f"got {config.scheduler!r} (set epsilon=0 for pure packet)"
            )
        self.config = config
        self.hybrid = hybrid
        self.traces = list(traces)
        self.capacity = total_byte_rate(config) / config.utilization
        self.monitor = DelayMonitor(config.num_classes, warmup=config.warmup)
        self.timeline: list[dict] = []
        self.packet_departures = 0
        self.fluid_credited = 0
        self.seeded_packets = 0
        self._carried = [0.0] * config.num_classes
        self._last_delays: list[float] = [math.nan] * config.num_classes
        self._hub_trace: Optional["ArrivalTrace"] = None
        self._seed_serial = 0

    # -- derived inputs -------------------------------------------------
    @property
    def hub_trace(self) -> "ArrivalTrace":
        """All branch traces merged: the hub's offered arrival stream."""
        if self._hub_trace is None:
            from ..traffic.trace import ArrivalTrace, merge_traces

            live = [t for t in self.traces if len(t)]
            if live:
                self._hub_trace = merge_traces(live)
            else:
                empty = np.empty(0)
                self._hub_trace = ArrivalTrace(
                    empty, np.empty(0, dtype=np.int64), empty.copy()
                )
        return self._hub_trace

    def plan(self, horizon: float) -> list[Segment]:
        """The segment plan for this cell (envelope-driven)."""
        from ..traffic.compile import RateEnvelope

        trace = self.hub_trace
        envelope = RateEnvelope.from_arrays(
            trace.times, trace.class_ids, trace.sizes,
            horizon, self.hybrid.bin_width, self.config.num_classes,
        )
        agg = envelope.aggregate_byte_rates()
        edges = envelope.edges

        def predicted_error(t0: float, t1: float) -> float:
            # Coefficient of variation of the window's aggregate byte
            # rate over ~8 coarse chunks.  Coarse on purpose: the
            # aggregate inside a fluid window is an *exact* Lindley
            # replay, so fine-timescale burstiness costs nothing --
            # only macroscopic rate drift (non-stationarity) degrades
            # the per-class split model, and that is what chunk-scale
            # CV measures, independent of the envelope bin width.
            lo = bisect_right(edges.tolist(), t0) - 1
            hi = max(lo + 1, bisect_left(edges.tolist(), t1))
            window = agg[max(lo, 0) : hi]
            if not len(window):
                return 0.0  # an idle stretch drains analytically
            chunks = np.array_split(window, min(8, len(window)))
            means = np.array([float(chunk.mean()) for chunk in chunks])
            grand = float(means.mean())
            if grand <= 0:
                return 0.0
            return float(means.std()) / grand

        transients = list(envelope.change_points(self.hybrid.rate_jump))
        transients.extend(self.config.load_shape.transient_edges(horizon))
        return plan_segments(
            horizon, self.config.warmup, self.hybrid, transients,
            predicted_error,
        )

    # -- run ------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> "HybridController":
        """Execute the plan up to ``until`` (default: the horizon)."""
        horizon = self.config.horizon if until is None else min(
            until, self.config.horizon
        )
        plan = self.plan(horizon)
        cursor = 0.0
        for index, segment in enumerate(plan):
            if cursor >= segment.end:
                continue
            start = max(cursor, segment.start)
            if segment.mode == "fluid":
                cursor = self._run_fluid(start, segment.end)
            else:
                next_is_fluid = (
                    index + 1 < len(plan) and plan[index + 1].mode == "fluid"
                )
                cursor = self._run_packet(start, segment.end, next_is_fluid)
        return self

    # -- packet segments ------------------------------------------------
    def _run_packet(self, start: float, end: float, seek_regen: bool) -> float:
        """One packet-mode segment on a fresh topology; returns the
        actual handoff time (``end``, or the idle instant past it)."""
        from ..scenarios.generators import build_city_topology
        from ..traffic.trace import ArrivalTrace, TraceSource

        config = self.config
        sim = Simulator()
        entries, links, hub = build_city_topology(sim, config)
        hub.add_monitor(self.monitor)

        if sum(self._carried) > 0:
            seeds = self._build_seeds(start)
            if seeds:
                sim.schedule(start, hub.seed_backlog, seeds)
        # Feed each branch its slice; extend past the boundary by the
        # regeneration search window so the handoff has live traffic.
        feed_end = end + (self.hybrid.regen_window if seek_regen else 0.0)
        fed = 0
        for branch, trace in enumerate(self.traces):
            lo = int(np.searchsorted(trace.times, start, side="left"))
            hi = int(np.searchsorted(trace.times, feed_end, side="left"))
            if hi <= lo:
                continue
            piece = ArrivalTrace(
                trace.times[lo:hi], trace.class_ids[lo:hi], trace.sizes[lo:hi]
            )
            TraceSource(
                sim, entries[branch], piece,
                first_packet_id=branch * 10_000_000,
            ).start()
            fed += hi - lo

        departures_before = hub.departures
        sim.run(until=end)
        handoff = end
        self._carried = [0.0] * config.num_classes
        if seek_regen:
            deadline = end + self.hybrid.regen_window
            while any(link.busy for link in links):
                key = sim.peek_key()
                if key is None or key[0] > deadline:
                    break
                sim.step()
            if any(link.busy for link in links):
                # No regeneration point: read the backlog out instead.
                handoff = max(sim.now, end)
                carried = [0.0] * config.num_classes
                for link in links:
                    for cid, q in enumerate(link.backlog_snapshot(handoff)):
                        carried[cid] += q
                self._carried = carried
            else:
                handoff = max(sim.now, end)
        self.packet_departures += hub.departures - departures_before
        self.timeline.append(
            {
                "mode": "packet",
                "start": start,
                "end": handoff,
                "arrivals": fed,
                "seeded": self._seed_serial,
            }
        )
        return handoff

    def _build_seeds(self, start: float) -> list[Packet]:
        """Materialize the carried fluid backlog as synthetic packets.

        Per class, the backlog becomes ``round(q / mean_size)`` equal
        packets whose arrival stamps are backdated over the class's
        estimated delay -- the age profile a FIFO queue in steady state
        would show -- so head-age schedulers resume with sane
        priorities and the seeds' measured delays reproduce the fluid
        estimate they came from.
        """
        trace = self.hub_trace
        packets: list[Packet] = []
        for cid, backlog in enumerate(self._carried):
            if backlog <= 0:
                continue
            class_sizes = trace.sizes[trace.class_ids == cid]
            mean_size = float(class_sizes.mean()) if len(class_sizes) else 1000.0
            count = max(1, int(round(backlog / mean_size)))
            size = backlog / count
            est = self._last_delays[cid]
            if not math.isfinite(est) or est <= 0:
                est = backlog / self.capacity
            for k in range(count):
                arrived = start - est + est * (k + 1.0) / (count + 1.0)
                packet = Packet(
                    packet_id=990_000_000 + self._seed_serial,
                    class_id=cid,
                    size=size,
                    created_at=arrived,
                )
                self._seed_serial += 1
                packets.append(packet)
        packets.sort(key=lambda p: p.arrived_at)
        self.seeded_packets += len(packets)
        return packets

    # -- fluid segments -------------------------------------------------
    def _calibration(self) -> Optional[list[float]]:
        """Measured per-class means, once every class has enough
        packet-mode samples to trust."""
        stats = self.monitor.stats
        if all(s.count >= _CALIBRATION_SAMPLES for s in stats):
            means = [s.mean for s in stats]
            if all(math.isfinite(m) and m > 0 for m in means):
                return means
        return None

    def _run_fluid(self, start: float, end: float) -> float:
        """One fluid segment; returns the actual handoff time."""
        config = self.config
        trace = self.hub_trace
        lo = int(np.searchsorted(trace.times, start, side="left"))
        hi = int(np.searchsorted(trace.times, end, side="left"))
        result = fluid_window(
            trace.times[lo:hi],
            trace.class_ids[lo:hi],
            trace.sizes[lo:hi],
            config.num_classes,
            self.capacity,
            start,
            end,
            config.scheduler,
            config.sdps,
            self._carried,
            calibration=self._calibration(),
            regen_window=self.hybrid.regen_window,
        )
        credited = 0
        for cid, (n, d) in enumerate(zip(result.counts, result.delays)):
            if n and math.isfinite(d):
                stats = self.monitor.stats[cid]
                stats.count += n
                stats.total += n * d
                stats.total_sq += n * d * d
                if d < stats.min:
                    stats.min = d
                if d > stats.max:
                    stats.max = d
                credited += n
                self._last_delays[cid] = d
        self.fluid_credited += credited
        self._carried = list(result.end_backlogs)
        self.timeline.append(
            {
                "mode": "fluid",
                "start": start,
                "end": result.handoff_time,
                "arrivals": credited,
                "deferred": result.deferred,
                "regenerated": result.regenerated,
                "d_agg": result.d_agg,
            }
        )
        return result.handoff_time

    # -- reporting ------------------------------------------------------
    def summary(self) -> dict:
        """Mode-timeline roll-up for the cell summary."""
        fluid_span = sum(
            t["end"] - t["start"] for t in self.timeline if t["mode"] == "fluid"
        )
        total_span = self.timeline[-1]["end"] if self.timeline else 0.0
        return {
            "epsilon": self.hybrid.epsilon,
            "segments": len(self.timeline),
            "fluid_time_fraction": (
                fluid_span / total_span if total_span else 0.0
            ),
            "packet_departures": self.packet_departures,
            "fluid_credited": self.fluid_credited,
            "seeded_packets": self.seeded_packets,
            "timeline": self.timeline,
        }


def run_hybrid_city(
    config: "CityScenarioConfig", traces: Sequence["ArrivalTrace"]
) -> HybridController:
    """Run one city cell through the hybrid engine.

    The entry point :func:`repro.scenarios.city.city_summary` uses when
    a cell carries a :class:`HybridConfig` with ``epsilon > 0``; the
    engine-level wiring goes through ``Simulator.run(hybrid=...)``.
    """
    controller = HybridController(config, traces)
    sim = Simulator()
    sim.run(until=config.horizon, hybrid=controller)
    return controller
