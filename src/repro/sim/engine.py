"""Discrete-event simulation kernel.

A deliberately small, fast core: a binary-heap calendar of
:class:`~repro.sim.events.EventHandle` objects and a run loop.  All
higher-level machinery (links, sources, monitors, network nodes) is
built out of callbacks scheduled here.

Design notes
------------
* Time is a ``float`` in arbitrary units (see :mod:`repro.units`).
* Events scheduled for the same instant fire in insertion order, which
  makes runs deterministic given deterministic callbacks and seeds.
* Cancellation is lazy: cancelled handles stay in the heap and are
  skipped when popped, so cancel is O(1).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from ..errors import SimulationError
from .events import EventHandle

__all__ = ["Simulator"]


class Simulator:
    """Event calendar plus current-time clock.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    5.0
    """

    __slots__ = ("_heap", "_seq", "now", "_running", "_events_processed")

    def __init__(self) -> None:
        self._heap: list[EventHandle] = []
        self._seq = 0
        #: Current simulation time.
        self.now = 0.0
        self._running = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        time: float,
        callback: Callable[..., None],
        payload: Any = None,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute ``time``.

        ``payload`` (if not ``None``) is passed as the single positional
        argument.  Returns a handle that can be cancelled.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now={self.now}"
            )
        handle = EventHandle(time, self._seq, callback, payload)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., None],
        payload: Any = None,
    ) -> EventHandle:
        """Schedule ``callback`` after a relative ``delay >= 0``."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule(self.now + delay, callback, payload)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns False if none remain."""
        heap = self._heap
        while heap:
            handle = heapq.heappop(heap)
            callback = handle.callback
            if callback is None:  # cancelled
                continue
            self.now = handle.time
            self._events_processed += 1
            if handle.payload is None:
                callback()
            else:
                callback(handle.payload)
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run until the calendar drains or ``until`` is reached.

        When ``until`` is given, every event with ``time <= until`` is
        fired and the clock is left at ``until`` (even if the last event
        fired earlier), mirroring classic DES semantics so that
        rate/interval statistics cover the full horizon.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        try:
            heap = self._heap
            if until is None:
                while self.step():
                    pass
                return
            while heap:
                handle = heap[0]
                if handle.time > until:
                    break
                heapq.heappop(heap)
                callback = handle.callback
                if callback is None:
                    continue
                self.now = handle.time
                self._events_processed += 1
                if handle.payload is None:
                    callback()
                else:
                    callback(handle.payload)
            if until > self.now:
                self.now = until
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of heap entries, including cancelled ones."""
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far."""
        return self._events_processed

    def peek(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the heap is empty."""
        heap = self._heap
        while heap and heap[0].callback is None:
            heapq.heappop(heap)
        return heap[0].time if heap else None
