"""Discrete-event simulation kernel.

A deliberately small, fast core: a binary-heap calendar of plain
``(time, seq, callback, payload)`` tuples and a run loop.  All
higher-level machinery (links, sources, monitors, network nodes) is
built out of callbacks scheduled here.

Design notes
------------
* Time is a ``float`` in arbitrary units (see :mod:`repro.units`).
* Events scheduled for the same instant fire in insertion order, which
  makes runs deterministic given deterministic callbacks and seeds.
* Heap entries are tuples, not objects: ``(time, seq)`` is unique per
  event, so heap comparisons stay in C and never reach the callback.
  This is the kernel's hottest path -- a simulation run is essentially
  one ``heappush``/``heappop`` pair per event.
* Cancellation needs identity, which tuples cannot give, so only
  :meth:`Simulator.schedule_cancellable` allocates an
  :class:`~repro.sim.events.EventHandle` facade; the heap entry then
  carries the handle in its payload slot behind a private sentinel.
  Cancellation stays lazy: cancelled handles remain in the heap and
  are skipped when popped, so cancel is O(1).
* Runtime verification lives in a *separate* loop,
  :meth:`Simulator.run_checked`, which the invariant subsystem
  (:mod:`repro.invariants`) drives; :meth:`Simulator.run` itself never
  pays for checks it does not perform.

Run-loop re-entry contract (inline fusion loops)
------------------------------------------------
A dispatched callback may itself process further events *inline*
without returning to the run loop: the link's busy-period drain (and
its chain-fused generalization over several coupled links, see
:mod:`repro.sim.link`) and the arrival cursor's batch injection
(:mod:`repro.traffic.compile`).  The contract such a loop must keep is
exactly what the run loop itself guarantees between dispatches:

* ``now`` only moves forward, and never past :attr:`_run_until`;
* an inline ("virtual") event may be processed only when its
  ``(time, seq)`` key precedes every live heap entry, and each
  ``_seq`` reservation happens exactly where an evented execution
  would have called :meth:`schedule`;
* on return, the heap holds precisely the events an evented execution
  would hold -- mirrored entries that were absorbed (popped at
  heap-min) are pushed back with identical keys when still pending.

Under that contract the calendar is bit-identical to an evented run at
every re-entry; the only observable difference is
:attr:`events_processed`, which counts real dispatches only.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Optional

from ..errors import InvariantViolation, SimulationError
from .events import EventHandle

__all__ = ["Simulator"]

#: Marks heap entries whose payload slot holds an :class:`EventHandle`
#: (the cancellable slow path) instead of a plain callback payload.
_CANCELLABLE: Any = object()


class Simulator:
    """Event calendar plus current-time clock.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(5.0, fired.append, "a")
    >>> sim.schedule(2.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    5.0
    """

    __slots__ = (
        "_heap",
        "_seq",
        "now",
        "_running",
        "_events_processed",
        "_run_until",
        "_links",
        "_topo_version",
    )

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Any, Any]] = []
        self._seq = 0
        #: Current simulation time.
        self.now = 0.0
        self._running = False
        self._events_processed = 0
        #: Every :class:`~repro.sim.link.Link` built on this simulator,
        #: in construction order.  The chain-fused drain kernel scans it
        #: to discover *upstream* fan-in members (links whose target
        #: resolves into an already-walked chain member) -- a downstream
        #: BFS alone cannot see them.
        self._links: list[Any] = []
        #: Monotonic topology revision.  Bumped whenever the link graph
        #: changes shape in a way cached chain walks cannot observe
        #: through their own guards: a new link is built, a link's
        #: ``target`` is rebound, a feeder/cursor attaches or detaches,
        #: or a routed network rewires a route.  Links stamp the version
        #: into their cached chain and rebuild when it moves, closing
        #: the stale-fusion gap for *upstream-side* edits (a cached
        #: ``_chain_fuse=False`` decision used to never revalidate).
        self._topo_version = 0
        #: Horizon of the active :meth:`run`/:meth:`run_checked` call
        #: (``+inf`` outside a bounded run).  Inline event-fusion loops
        #: -- the link's busy-period drain kernel and the arrival
        #: cursor's batch injection -- read this so they never advance
        #: the clock past the horizon the caller asked for.
        self._run_until = math.inf

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        time: float,
        callback: Callable[..., None],
        payload: Any = None,
    ) -> None:
        """Schedule ``callback`` at absolute ``time`` (fast path).

        ``payload`` (if not ``None``) is passed as the single positional
        argument.  The event cannot be cancelled; use
        :meth:`schedule_cancellable` when cancellation is needed.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now={self.now}"
            )
        heapq.heappush(self._heap, (time, self._seq, callback, payload))
        self._seq += 1

    def schedule_cancellable(
        self,
        time: float,
        callback: Callable[..., None],
        payload: Any = None,
    ) -> EventHandle:
        """Schedule ``callback`` at ``time``; returns a cancellable handle."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now={self.now}"
            )
        handle = EventHandle(time, self._seq, callback, payload)
        heapq.heappush(self._heap, (time, self._seq, _CANCELLABLE, handle))
        self._seq += 1
        return handle

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., None],
        payload: Any = None,
    ) -> None:
        """Schedule ``callback`` after a relative ``delay >= 0``."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.schedule(self.now + delay, callback, payload)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns False if none remain."""
        heap = self._heap
        while heap:
            time, _, callback, payload = heapq.heappop(heap)
            if callback is _CANCELLABLE:
                callback = payload.callback
                if callback is None:  # cancelled
                    continue
                payload = payload.payload
            self.now = time
            self._events_processed += 1
            if payload is None:
                callback()
            else:
                callback(payload)
            return True
        return False

    def run(self, until: Optional[float] = None, hybrid: Any = None) -> None:
        """Run until the calendar drains or ``until`` is reached.

        When ``until`` is given, every event with ``time <= until`` is
        fired and the clock is left at ``until`` (even if the last event
        fired earlier), mirroring classic DES semantics so that
        rate/interval statistics cover the full horizon.  Running to a
        horizon already in the past is rejected.

        With ``hybrid`` set (a :class:`~repro.sim.hybrid.HybridController`)
        the run is delegated to the hybrid fluid/packet engine: the
        controller drives its own per-segment simulators and this
        calendar stays untouched -- only the clock is advanced to the
        horizon so callers see ordinary run semantics.  Packet segments
        each get a *fresh* Simulator spanning the whole multihop
        topology; fluid segments replay every link's Lindley recursion
        analytically (:meth:`HybridController._evaluate_links`), so no
        event of theirs ever touches a calendar.  The handoff contract
        between the two modes lives on :class:`~repro.sim.link.Link`
        (:meth:`~repro.sim.link.Link.seed_backlog` /
        :meth:`~repro.sim.link.Link.backlog_snapshot`).
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        if until is not None and until < self.now:
            raise SimulationError(
                f"cannot run to a horizon in the past: {until} < now={self.now}"
            )
        if hybrid is not None:
            if self._heap:
                raise SimulationError(
                    "hybrid runs own their whole timeline; this simulator "
                    "already has scheduled events"
                )
            self._running = True
            try:
                hybrid.run(until)
            finally:
                self._running = False
            if until is not None and until > self.now:
                self.now = until
            return
        self._running = True
        self._run_until = math.inf if until is None else until
        # The fired-event count accumulates in a local and is flushed
        # once on exit: one C-level integer add per event instead of a
        # slot load/store pair on the hottest loop in the codebase.
        processed = 0
        try:
            heap = self._heap
            pop = heapq.heappop
            if until is None:
                while heap:
                    time, _, callback, payload = pop(heap)
                    if callback is _CANCELLABLE:
                        callback = payload.callback
                        if callback is None:
                            continue
                        payload = payload.payload
                    self.now = time
                    processed += 1
                    if payload is None:
                        callback()
                    else:
                        callback(payload)
                return
            while heap:
                time = heap[0][0]
                if time > until:
                    break
                _, _, callback, payload = pop(heap)
                if callback is _CANCELLABLE:
                    callback = payload.callback
                    if callback is None:
                        continue
                    payload = payload.payload
                self.now = time
                processed += 1
                if payload is None:
                    callback()
                else:
                    callback(payload)
            if until > self.now:
                self.now = until
        finally:
            self._events_processed += processed
            self._running = False
            self._run_until = math.inf

    def run_checked(
        self,
        until: Optional[float] = None,
        on_event: Optional[Callable[[float], None]] = None,
    ) -> None:
        """Like :meth:`run`, but with kernel-level invariant checks.

        The invariant-checking subsystem (:mod:`repro.invariants`) runs
        simulations through this entry point instead of :meth:`run`, so
        the unchecked hot loop carries *zero* extra work when checks are
        disabled.  Per event this loop additionally verifies event
        causality at the calendar level -- the clock never moves
        backwards, even if a callback tampered with ``now`` -- and
        reports each dispatch to the optional ``on_event(now)`` hook.

        Raises :class:`~repro.errors.InvariantViolation` on a time
        regression, with the offending event time attached.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        if until is not None and until < self.now:
            raise SimulationError(
                f"cannot run to a horizon in the past: {until} < now={self.now}"
            )
        self._running = True
        self._run_until = math.inf if until is None else until
        try:
            heap = self._heap
            pop = heapq.heappop
            while heap:
                time = heap[0][0]
                if until is not None and time > until:
                    break
                if time < self.now:
                    raise InvariantViolation(
                        "event-causality",
                        f"event calendar time regression: next event at "
                        f"{time} but clock already at {self.now}",
                        sim_time=self.now,
                    )
                _, _, callback, payload = pop(heap)
                if callback is _CANCELLABLE:
                    callback = payload.callback
                    if callback is None:
                        continue
                    payload = payload.payload
                self.now = time
                self._events_processed += 1
                if payload is None:
                    callback()
                else:
                    callback(payload)
                if on_event is not None:
                    on_event(time)
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False
            self._run_until = math.inf

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of heap entries, including cancelled ones."""
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far."""
        return self._events_processed

    def peek(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the heap is empty."""
        key = self.peek_key()
        return key[0] if key is not None else None

    def peek_key(self) -> Optional[tuple[float, int]]:
        """``(time, seq)`` of the next live event, or ``None`` if none.

        Events at the same instant fire in ``seq`` order, so this key is
        the calendar's full ordering: an inline event-fusion loop (the
        link drain kernel) may process any virtual event whose
        ``(time, seq)`` precedes it without reordering history.
        Cancelled heap heads are discarded as a side effect, exactly as
        the run loop would skip them.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2] is _CANCELLABLE and entry[3].callback is None:
                heapq.heappop(heap)
                continue
            return entry[0], entry[1]
        return None
