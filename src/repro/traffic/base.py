"""Interfaces for traffic generation.

Two small protocols compose into a source:

* :class:`InterarrivalProcess` -- draws the gaps between consecutive
  packet arrivals of one class (Pareto in the paper, Poisson/CBR/on-off
  for validation and extensions).
* :class:`PacketSizeSampler` -- draws packet sizes in bytes (the paper's
  trimodal mix, or fixed sizes for the multi-hop study).

Both expose their analytic means so that experiment harnesses can solve
for the rates that hit a requested utilization exactly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = ["InterarrivalProcess", "PacketSizeSampler"]


class InterarrivalProcess(ABC):
    """Generator of interarrival gaps with a known mean."""

    @abstractmethod
    def next_gap(self) -> float:
        """Draw the next interarrival time (strictly positive)."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """Analytic mean interarrival time."""

    @property
    def rate(self) -> float:
        """Analytic arrival rate (packets per time unit)."""
        return 1.0 / self.mean


class PacketSizeSampler(ABC):
    """Generator of packet sizes with a known mean."""

    @abstractmethod
    def next_size(self) -> float:
        """Draw the next packet size in bytes."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """Analytic mean packet size in bytes."""
