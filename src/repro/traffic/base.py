"""Interfaces for traffic generation.

Two small protocols compose into a source:

* :class:`InterarrivalProcess` -- draws the gaps between consecutive
  packet arrivals of one class (Pareto in the paper, Poisson/CBR/on-off
  for validation and extensions).
* :class:`PacketSizeSampler` -- draws packet sizes in bytes (the paper's
  trimodal mix, or fixed sizes for the multi-hop study).

Both expose their analytic means so that experiment harnesses can solve
for the rates that hit a requested utilization exactly.

Block drawing
-------------
Both protocols also support *block* drawing (:meth:`draw_gaps` /
:meth:`draw_sizes`): n draws returned as one numpy array.  The contract
is strict -- a block must consume the process's random stream exactly
like n successive scalar draws and return bit-identical values, so the
compiled arrival path (:mod:`repro.traffic.compile`) reproduces the
scalar path's simulations to the last bit.  The base implementations
simply loop over the scalar draw (trivially equivalent); concrete
processes override them with vectorized draws where numpy's kernels are
bit-compatible with the scalar ones.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["InterarrivalProcess", "PacketSizeSampler"]


class InterarrivalProcess(ABC):
    """Generator of interarrival gaps with a known mean."""

    @abstractmethod
    def next_gap(self) -> float:
        """Draw the next interarrival time (strictly positive)."""

    def draw_gaps(self, n: int) -> np.ndarray:
        """Draw the next ``n`` gaps as a float64 array.

        Equivalent -- bit for bit, including the random draws consumed
        -- to ``n`` successive :meth:`next_gap` calls.  This fallback
        loops over the scalar draw; stationary processes override it
        with vectorized block draws.
        """
        next_gap = self.next_gap
        return np.asarray([next_gap() for _ in range(n)], dtype=np.float64)

    @property
    @abstractmethod
    def mean(self) -> float:
        """Analytic mean interarrival time."""

    @property
    def rate(self) -> float:
        """Analytic arrival rate (packets per time unit)."""
        return 1.0 / self.mean


class PacketSizeSampler(ABC):
    """Generator of packet sizes with a known mean."""

    @abstractmethod
    def next_size(self) -> float:
        """Draw the next packet size in bytes."""

    def draw_sizes(self, n: int) -> np.ndarray:
        """Draw the next ``n`` sizes as a float64 array.

        Same contract as :meth:`InterarrivalProcess.draw_gaps`:
        bit-identical to ``n`` scalar :meth:`next_size` calls.
        """
        next_size = self.next_size
        return np.asarray([next_size() for _ in range(n)], dtype=np.float64)

    @property
    @abstractmethod
    def mean(self) -> float:
        """Analytic mean packet size in bytes."""
