"""Pareto interarrival process (the paper's traffic model).

The paper draws interarrivals from a Pareto distribution with shape
alpha = 1.9: finite mean, infinite variance, hence traffic that is
bursty over a wide range of timescales.  For shape alpha and scale
(minimum gap) x_m the density is f(x) = alpha x_m^alpha / x^(alpha+1)
for x >= x_m, with mean x_m * alpha / (alpha - 1) when alpha > 1.

Sampling uses inversion: x = x_m * U^(-1/alpha).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .base import InterarrivalProcess

__all__ = ["ParetoInterarrivals", "PAPER_PARETO_SHAPE"]

#: Shape used throughout the paper's simulations.
PAPER_PARETO_SHAPE = 1.9


class ParetoInterarrivals(InterarrivalProcess):
    """Pareto(alpha, x_m) gaps parameterized by their mean.

    Parameters
    ----------
    mean_gap:
        Desired mean interarrival time; the scale is derived as
        x_m = mean_gap * (alpha - 1) / alpha.
    shape:
        Tail index alpha; must exceed 1 so the mean exists.  The paper
        uses 1.9 (infinite variance).
    rng:
        Source of uniforms; pass a seeded ``numpy`` generator for
        reproducible runs.
    """

    def __init__(
        self,
        mean_gap: float,
        shape: float = PAPER_PARETO_SHAPE,
        rng: np.random.Generator | None = None,
    ) -> None:
        if mean_gap <= 0:
            raise ConfigurationError(f"mean_gap must be positive: {mean_gap}")
        if shape <= 1.0:
            raise ConfigurationError(
                f"Pareto shape must exceed 1 for a finite mean: {shape}"
            )
        self._mean = float(mean_gap)
        self.shape = float(shape)
        self.scale = self._mean * (self.shape - 1.0) / self.shape
        self._rng = rng if rng is not None else np.random.default_rng()
        self._inv_shape = 1.0 / self.shape

    def next_gap(self) -> float:
        # Inversion; 1 - U avoids U == 0 raising a zero-division.
        u = 1.0 - self._rng.random()
        return self.scale * u ** (-self._inv_shape)

    def draw_gaps(self, n: int) -> np.ndarray:
        # The uniform block and the 1-U flip are bit-identical to n
        # scalar draws, but the power must stay a Python-level ``**``:
        # numpy's vectorized pow differs from libm's by 1 ulp on ~5% of
        # inputs, which is enough to flip a near-tie scheduler decision
        # and macroscopically diverge a long run.
        scale = self.scale
        neg_inv_shape = -self._inv_shape
        u = 1.0 - self._rng.random(n)
        return np.asarray(
            [scale * x ** neg_inv_shape for x in u.tolist()], dtype=np.float64
        )

    @property
    def mean(self) -> float:
        return self._mean
