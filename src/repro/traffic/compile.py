"""Compiled arrival streams: block-drawn traffic behind one cursor.

The scalar source path (:class:`~repro.traffic.source.TrafficSource`)
pays, per packet: a Generator method call for the gap, another for the
size, a Python callback dispatch, and a heap push/pop on the global
event calendar.  At the paper's operating point -- heavy-tailed sources
at 80-95% utilization -- arrivals are roughly half of all heap traffic,
so this module compiles them instead:

* Each source pre-draws interarrival gaps and packet sizes in numpy
  blocks (:meth:`~repro.traffic.base.InterarrivalProcess.draw_gaps` /
  :meth:`~repro.traffic.base.PacketSizeSampler.draw_sizes`), converts
  gaps to absolute timestamps with a carry-folded cumulative sum, and
  materializes one bounded chunk at a time, so memory stays O(chunk)
  per source regardless of horizon.
* All compiled streams aimed at a link feed one
  :class:`ArrivalCursor`, which keeps exactly *one* outstanding event
  on the simulator heap (the globally next arrival) instead of one
  pending event per source.

Equivalence contract
--------------------
The compiled path is bit-identical to the scalar path: block draws
consume each source's private random stream exactly like scalar draws
(see :mod:`repro.traffic.base`), and the carry-folded cumsum performs
the same left-to-right float additions as the scalar ``t += gap``
accumulation.  Two caveats, both satisfied by every in-repo call site
and by the :class:`~repro.sim.rng.RandomStreams` discipline:

* A source's interarrival process and size sampler must draw from
  *independent* generators (block drawing changes how their draws
  interleave, which is only invisible when the streams are separate).
* Sources whose arrivals collide at the exact same float timestamp are
  ordered by registration order on the cursor, whereas the scalar path
  orders them by event-scheduling sequence.  With continuous
  interarrival distributions exact collisions have probability zero.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from dataclasses import dataclass
from math import inf
from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigurationError, SchedulingError
from ..sim.engine import Simulator
from ..sim.link import Receiver, _chain_arrival, _chain_arrival_col
from ..sim.packet import Packet
from .base import InterarrivalProcess, PacketSizeSampler
from .source import PacketIdAllocator

__all__ = [
    "DEFAULT_CHUNK",
    "RateEnvelope",
    "CompiledSource",
    "CompiledMixedSource",
    "ArrivalCursor",
]


@dataclass(frozen=True)
class RateEnvelope:
    """Piecewise-constant per-class offered-rate envelope on a time grid.

    ``edges`` are ``bins + 1`` ascending bin edges; ``byte_rates`` and
    ``packet_rates`` are ``(num_classes, bins)`` arrays of mean offered
    bytes / packets per time unit within each bin.  The hybrid engine
    (:mod:`repro.sim.hybrid`) integrates exact offered load over fluid
    segments from these envelopes and derives its transient boundaries
    from :meth:`change_points`; compiled streams export their analytic
    envelopes via :meth:`_CompiledStream.rate_envelope` and recorded
    traces via :meth:`from_arrays`.
    """

    edges: np.ndarray
    byte_rates: np.ndarray
    packet_rates: np.ndarray

    def __post_init__(self) -> None:
        edges = np.asarray(self.edges, dtype=np.float64)
        if edges.ndim != 1 or len(edges) < 2:
            raise ConfigurationError("edges must be a 1-D array of >= 2 edges")
        if np.any(np.diff(edges) <= 0):
            raise ConfigurationError("edges must be strictly increasing")
        for name in ("byte_rates", "packet_rates"):
            rates = getattr(self, name)
            if rates.ndim != 2 or rates.shape[1] != len(edges) - 1:
                raise ConfigurationError(
                    f"{name} must be (num_classes, bins) with "
                    f"bins == len(edges) - 1"
                )
            if np.any(rates < 0):
                raise ConfigurationError(f"{name} must be non-negative")
        if self.byte_rates.shape != self.packet_rates.shape:
            raise ConfigurationError("rate arrays must share one shape")

    @property
    def num_classes(self) -> int:
        return int(self.byte_rates.shape[0])

    @property
    def bins(self) -> int:
        return int(self.byte_rates.shape[1])

    def aggregate_byte_rates(self) -> np.ndarray:
        """Per-bin offered bytes/unit summed over classes."""
        return self.byte_rates.sum(axis=0)

    def change_points(self, rel_jump: float = 0.25) -> list[float]:
        """Interior edges where the aggregate rate jumps.

        A bin boundary is a transient when the aggregate byte rate
        changes by more than ``rel_jump`` relative to the envelope's
        overall mean rate -- the normalization that keeps near-idle
        bins from flagging spurious transients.
        """
        if rel_jump <= 0:
            raise ConfigurationError(f"rel_jump must be positive: {rel_jump}")
        agg = self.aggregate_byte_rates()
        scale = float(agg.mean())
        if scale <= 0:
            return []
        jumps = np.abs(np.diff(agg)) > rel_jump * scale
        return [float(t) for t in self.edges[1:-1][jumps]]

    def combine(self, other: "RateEnvelope") -> "RateEnvelope":
        """Superpose two envelopes sharing one grid and class count."""
        if self.byte_rates.shape != other.byte_rates.shape or not np.array_equal(
            self.edges, other.edges
        ):
            raise ConfigurationError("envelopes must share grid and classes")
        return RateEnvelope(
            self.edges,
            self.byte_rates + other.byte_rates,
            self.packet_rates + other.packet_rates,
        )

    @classmethod
    def from_arrays(
        cls,
        times: np.ndarray,
        class_ids: np.ndarray,
        sizes: np.ndarray,
        horizon: float,
        bin_width: float,
        num_classes: Optional[int] = None,
    ) -> "RateEnvelope":
        """Binned empirical envelope of a recorded arrival stream."""
        if horizon <= 0 or bin_width <= 0:
            raise ConfigurationError("horizon and bin_width must be positive")
        bins = max(1, int(np.ceil(horizon / bin_width)))
        edges = np.linspace(0.0, bins * bin_width, bins + 1)
        if num_classes is None:
            num_classes = int(class_ids.max()) + 1 if len(class_ids) else 1
        byte_rates = np.zeros((num_classes, bins))
        packet_rates = np.zeros((num_classes, bins))
        for cid in range(num_classes):
            mask = class_ids == cid
            if not np.any(mask):
                continue
            byte_rates[cid], _ = np.histogram(
                times[mask], bins=edges, weights=sizes[mask]
            )
            packet_rates[cid], _ = np.histogram(times[mask], bins=edges)
        byte_rates /= bin_width
        packet_rates /= bin_width
        return cls(edges, byte_rates, packet_rates)

#: Gaps/sizes materialized per block: 16 Ki doubles = 128 KiB per array,
#: small enough that dozens of sources stay cache-friendly, large enough
#: that the per-block numpy overhead amortizes to a few ns per arrival.
DEFAULT_CHUNK = 16384


class _CompiledStream:
    """Chunked absolute-timestamp timeline of one source (base class).

    Subclasses fill ``_class_ids``/``_sizes`` for each block via
    :meth:`_draw_block_payload`.  The timeline itself is shared logic:
    draw a block of gaps, fold the running carry into the first gap, and
    cumulative-sum -- which performs exactly the scalar path's
    left-to-right ``t += gap`` additions -- then truncate strictly below
    ``stop_time`` (the scalar sources' ``next_time < stop_time`` rule).
    """

    def __init__(
        self,
        target: Receiver,
        interarrivals: InterarrivalProcess,
        ids: Optional[PacketIdAllocator] = None,
        flow_id: Optional[int] = None,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
        chunk: int = DEFAULT_CHUNK,
    ) -> None:
        if stop_time is not None and stop_time <= start_time:
            raise ConfigurationError("stop_time must exceed start_time")
        if chunk < 1:
            raise ConfigurationError(f"chunk must be >= 1: {chunk}")
        self.target = target
        self.interarrivals = interarrivals
        self.ids = ids if ids is not None else PacketIdAllocator()
        self.flow_id = flow_id
        self.start_time = start_time
        self.stop_time = stop_time
        self.chunk = chunk
        self.packets_emitted = 0
        self.bytes_emitted = 0.0
        self.packets_skipped = 0
        self.bytes_skipped = 0.0
        self._carry = start_time
        self._exhausted = False
        self._times: list[float] = []
        self._class_ids: list[int] = []
        self._sizes: list[float] = []
        self._head = 0
        #: Coupled chain member behind ``target`` during an active
        #: chain-fused drain; cached per chain epoch by the drain entry
        #: (see :meth:`ArrivalCursor.drain_batch`), ``None`` otherwise.
        self._chain_dcl = None

    # -- block materialization -----------------------------------------
    def _draw_block_payload(self, count: int) -> None:
        """Fill ``_class_ids`` and ``_sizes`` for ``count`` arrivals."""
        raise NotImplementedError

    def _load_block(self) -> bool:
        """Materialize the next chunk; False when the stream is done."""
        if self._exhausted:
            return False
        chunk = self.chunk
        stop = self.stop_time
        if stop is not None:
            # Size the block to the expected remaining arrivals (+10%
            # headroom), capped at ``chunk``.  Block size never changes
            # the emitted stream -- draws are consumed in sequence
            # either way -- it only bounds how many surplus draws are
            # discarded past ``stop_time``.  Unbounded streams keep the
            # fixed chunk: every draw is eventually used.
            want = int((stop - self._carry) / self.interarrivals.mean * 1.1) + 8
            if want < chunk:
                chunk = want
        gaps = self.interarrivals.draw_gaps(chunk)
        gaps[0] += self._carry
        times = np.cumsum(gaps)
        if stop is not None and times[-1] >= stop:
            times = times[: int(np.searchsorted(times, stop, side="left"))]
            self._exhausted = True
            if not len(times):
                self._times = []
                self._head = 0
                return False
        self._carry = float(times[-1])
        self._times = times.tolist()
        self._head = 0
        self._draw_block_payload(len(times))
        return True

    # -- fluid interface -----------------------------------------------
    def _class_rate_split(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-class (byte, packet) rate shares of the stream's mean."""
        raise NotImplementedError

    def rate_envelope(self, horizon: float, bin_width: float) -> RateEnvelope:
        """Analytic piecewise-constant offered-rate envelope.

        Compiled streams are (conditionally) stationary between their
        start and stop times, so the envelope is the mean rate spread
        over every bin the active interval overlaps, weighted by the
        overlapped fraction.  The hybrid engine sums these per-stream
        envelopes to integrate exact offered load over fluid segments.
        """
        byte_split, packet_split = self._class_rate_split()
        bins = max(1, int(np.ceil(horizon / bin_width)))
        edges = np.linspace(0.0, bins * bin_width, bins + 1)
        start = self.start_time
        stop = horizon if self.stop_time is None else min(self.stop_time, horizon)
        overlap = np.clip(
            np.minimum(edges[1:], stop) - np.maximum(edges[:-1], start),
            0.0,
            None,
        ) / bin_width
        return RateEnvelope(
            edges,
            byte_split[:, None] * overlap[None, :],
            packet_split[:, None] * overlap[None, :],
        )

    def fast_forward(self, until: float) -> tuple[int, float]:
        """Discard every arrival strictly before ``until``.

        Draws blocks exactly as emission would -- same block sizes,
        same stream consumption -- so the arrivals from ``until``
        onward are bit-identical to the ones a fully emitted run
        produces (packet *ids* are not reserved for skipped arrivals;
        only the random draws are).  The hybrid engine uses this to
        fluid-fast-forward warm-up: the skipped offered load is
        integrated analytically while the stream stays positioned for
        packet-mode replay.  Returns ``(skipped_packets,
        skipped_bytes)``, also accumulated on ``packets_skipped`` /
        ``bytes_skipped``.  Must be called before any emission.
        """
        if self.packets_emitted or self._head:
            raise ConfigurationError(
                "fast_forward must run before any arrival is emitted"
            )
        skipped = 0
        skipped_bytes = 0.0
        while True:
            head_time = self.peek_time()
            if head_time is None or head_time >= until:
                break
            times = self._times
            cut = bisect_left(times, until, self._head)
            skipped += cut - self._head
            skipped_bytes += sum(self._sizes[self._head : cut])
            self._head = cut
            if cut < len(times):
                break
        self.packets_skipped += skipped
        self.bytes_skipped += skipped_bytes
        return skipped, skipped_bytes

    # -- cursor interface ----------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending arrival, or None when done."""
        if self._head >= len(self._times) and not self._load_block():
            return None
        return self._times[self._head]

    def emit(self) -> Packet:
        """Materialize the head arrival as a Packet and advance."""
        head = self._head
        self._head = head + 1
        packet = Packet(
            packet_id=self.ids.next_id(),
            class_id=self._class_ids[head],
            size=self._sizes[head],
            created_at=self._times[head],
            flow_id=self.flow_id,
        )
        self.packets_emitted += 1
        self.bytes_emitted += packet.size
        return packet


class CompiledSource(_CompiledStream):
    """Block-drawn equivalent of :class:`~repro.traffic.source.TrafficSource`.

    One class, gaps from ``interarrivals``, sizes from ``sizes`` --
    producing the identical packet sequence (ids, times, sizes) when
    registered on an :class:`ArrivalCursor` as the scalar source
    produces through its per-arrival callbacks.
    """

    def __init__(
        self,
        target: Receiver,
        class_id: int,
        interarrivals: InterarrivalProcess,
        sizes: PacketSizeSampler,
        ids: Optional[PacketIdAllocator] = None,
        flow_id: Optional[int] = None,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
        chunk: int = DEFAULT_CHUNK,
    ) -> None:
        if class_id < 0:
            raise ConfigurationError(f"class_id must be >= 0: {class_id}")
        super().__init__(
            target, interarrivals, ids, flow_id, start_time, stop_time, chunk
        )
        self.class_id = class_id
        self.sizes = sizes

    def _draw_block_payload(self, count: int) -> None:
        self._class_ids = [self.class_id] * count
        self._sizes = self.sizes.draw_sizes(count).tolist()

    @property
    def offered_rate_bytes(self) -> float:
        """Analytic offered load in bytes per time unit."""
        return self.sizes.mean / self.interarrivals.mean

    def _class_rate_split(self) -> tuple[np.ndarray, np.ndarray]:
        byte_split = np.zeros(self.class_id + 1)
        packet_split = np.zeros(self.class_id + 1)
        byte_split[self.class_id] = self.offered_rate_bytes
        packet_split[self.class_id] = 1.0 / self.interarrivals.mean
        return byte_split, packet_split


class CompiledMixedSource(_CompiledStream):
    """Block-drawn equivalent of
    :class:`~repro.network.crosstraffic.MixedClassSource`: fixed packet
    size, per-packet class drawn from a finite distribution.
    """

    def __init__(
        self,
        target: Receiver,
        interarrivals: InterarrivalProcess,
        class_probabilities: Sequence[float],
        packet_size: float,
        rng: np.random.Generator,
        ids: Optional[PacketIdAllocator] = None,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
        chunk: int = DEFAULT_CHUNK,
    ) -> None:
        probs = np.asarray(class_probabilities, dtype=float)
        if probs.ndim != 1 or not len(probs):
            raise ConfigurationError("class_probabilities must be a 1-D sequence")
        if np.any(probs < 0) or abs(float(probs.sum()) - 1.0) > 1e-9:
            raise ConfigurationError(
                f"class probabilities must be non-negative and sum to 1: {probs}"
            )
        if packet_size <= 0:
            raise ConfigurationError(f"packet_size must be positive: {packet_size}")
        super().__init__(
            target, interarrivals, ids, None, start_time, stop_time, chunk
        )
        self._cum = np.cumsum(probs)
        self.packet_size = float(packet_size)
        self._rng = rng

    def _draw_block_payload(self, count: int) -> None:
        # Same uniforms, edges and clamp as MixedClassSource._emit.
        u = self._rng.random(count)
        indices = np.searchsorted(self._cum, u, side="right")
        np.minimum(indices, len(self._cum) - 1, out=indices)
        self._class_ids = indices.tolist()
        self._sizes = [self.packet_size] * count

    def _class_rate_split(self) -> tuple[np.ndarray, np.ndarray]:
        probs = np.diff(self._cum, prepend=0.0)
        packet_rate = 1.0 / self.interarrivals.mean
        return probs * packet_rate * self.packet_size, probs * packet_rate


class ArrivalCursor:
    """Merged injection cursor over compiled streams.

    Holds a small private heap of (head timestamp, registration order,
    stream) entries and keeps exactly one pending event on the simulator
    calendar: the globally next arrival across all registered streams.

    Each calendar firing injects a *batch*: after emitting the due
    arrival it keeps going -- advancing ``sim.now`` itself -- for as
    long as the next merged arrival stays within the run horizon and
    strictly before every pending calendar event, and only then
    reschedules one event for the next arrival.  For closely spaced
    streams (small-gap CBR/on-off) this removes the per-arrival
    calendar push/pop and run-loop dispatch that used to make the
    compiled path *slower* than scalar sources; a single-stream cursor
    also skips the private-heap replace entirely.  Ties with a calendar
    event defer to the calendar (the cursor reschedules and the run
    loop interleaves by sequence number, exactly as before).

    Mirror protocol (chain drains)
    ------------------------------
    The cursor mirrors its single pending calendar event's ``(time,
    seq)`` key in ``next_time`` / ``next_seq`` -- the same contract as
    fused feeders (see :mod:`repro.sim.link`) -- and registers itself
    on every distinct target link at :meth:`start`.  A chain-fused
    drain absorbs the event when it is the global heap minimum and
    then calls :meth:`drain_batch`, which runs the batch-injection
    loop inline against an *emulated* calendar minimum so batch
    boundaries (and therefore sequence-number consumption) stay
    bit-identical to an evented run; :meth:`park` restores the real
    event with the identical key.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._streams: list[_CompiledStream] = []
        self._heap: list[tuple[float, int, _CompiledStream]] = []
        self._started = False
        self.packets_injected = 0
        #: Heap key of the pending calendar event (feeder mirror
        #: protocol); ``next_time is None`` means nothing is pending.
        self.next_time: Optional[float] = None
        self.next_seq = 0
        self._virtual = False
        #: Chain-epoch marker: the ``coupled`` dict the streams'
        #: ``_chain_dcl`` caches were resolved against.
        self._dcl_for = None

    def add(self, stream: _CompiledStream) -> _CompiledStream:
        """Register a compiled stream.  Returns it for chaining."""
        if self._started:
            raise ConfigurationError(
                "cannot add streams after the cursor started"
            )
        self._streams.append(stream)
        return stream

    def start(self) -> None:
        """Schedule the first merged arrival.  Idempotent."""
        if self._started:
            return
        self._started = True
        for order, stream in enumerate(self._streams):
            first = stream.peek_time()
            if first is not None:
                self._heap.append((first, order, stream))
            # Register with the target for chain-drain absorption;
            # plain receivers (sinks, demuxes) have no _attach_cursor.
            attach = getattr(stream.target, "_attach_cursor", None)
            if attach is not None:
                attach(self)
        heapq.heapify(self._heap)
        if self._heap:
            sim = self.sim
            first = self._heap[0][0]
            self.next_time = first
            self.next_seq = sim._seq
            sim.schedule(first, self._fire)

    def _fire(self) -> None:
        sim = self.sim
        heap = self._heap
        sim_heap = sim._heap
        until = sim._run_until
        injected = 0
        while True:
            _, order, stream = heap[0]
            packet = stream.emit()
            injected += 1
            stream.target.receive(packet)
            next_time = stream.peek_time()
            if next_time is None:
                heapq.heappop(heap)
                if not heap:
                    self.next_time = None
                    break
            elif len(heap) == 1:
                heap[0] = (next_time, order, stream)
            else:
                heapq.heapreplace(heap, (next_time, order, stream))
            nxt = heap[0][0]
            if nxt > until or (sim_heap and sim_heap[0][0] <= nxt):
                self.next_time = nxt
                self.next_seq = sim._seq
                sim.schedule(nxt, self._fire)
                break
            sim.now = nxt
        self.packets_injected += injected

    def park(self, heap: list) -> None:
        """Re-push the pending arrival event after virtual absorption.

        The pushed entry is bit-identical to the one an evented run
        would hold (same time, same reserved sequence number, same
        callback), so the calendar state after a chain-drain park is
        indistinguishable from the evented path's.  No-op unless the
        cursor's event was absorbed (``_virtual``).
        """
        if self._virtual:
            self._virtual = False
            if self.next_time is not None:
                heapq.heappush(
                    heap, (self.next_time, self.next_seq, self._fire, None)
                )

    def drain_batch(self, now, until, sim_heap, fused_heap, coupled) -> bool:
        """Inline one :meth:`_fire` batch from a chain-fused drain.

        ``now`` is the absorbed event's timestamp (``sim.now`` is
        already there); ``fused_heap`` holds the drain's pending
        ``(time, seq, ...)`` events, which together with ``sim_heap``
        reproduce exactly the calendar an evented run would consult --
        so the batch boundary test (and hence every ``sim._seq``
        consumption) is bit-identical to :meth:`_fire`.  Emissions
        whose target is a coupled chain member (``coupled``, the
        drain's id -> member map) are handed straight to
        :func:`~repro.sim.link._chain_arrival` (inline enqueue +
        service start); all others go through plain ``receive``.
        Returns True when a next arrival was reserved (mirror updated,
        virtual); False when the cursor is exhausted.
        """
        sim = self.sim
        heap = self._heap
        injected = 0
        reserved = True
        if self._dcl_for is not coupled:
            # New chain epoch: re-resolve each stream's target against
            # this chain's coupled-member map once, so the per-packet
            # path below is a single attribute load.
            self._dcl_for = coupled
            for s in self._streams:
                s._chain_dcl = coupled.get(id(s.target))
        # The earliest foreign event bounds the batch.  Neither heap
        # can change under the inline-enqueue fast path below, so the
        # bound is hoisted and recomputed only after a dispatch that
        # may schedule (receive) or push a fused completion
        # (_chain_arrival).
        m = sim_heap[0][0] if sim_heap else inf
        if fused_heap and fused_heap[0][0] < m:
            m = fused_heap[0][0]
        while True:
            entry = heap[0]
            order = entry[1]
            stream = entry[2]
            head = stream._head
            dcl = stream._chain_dcl
            if dcl is not None and dcl.colmode:
                # -- columnar emit: the arrival enters the member's
                # per-class column as scalars; no Packet is built.  The
                # heap key equals _times[head], so created == arrived
                # == now and an int meta (flow-less) loses nothing.
                pid = next(stream.ids._counter)
                cid = stream._class_ids[head]
                size = stream._sizes[head]
                fid = stream.flow_id
                stream._head = head + 1
                stream.packets_emitted += 1
                stream.bytes_emitted += size
                injected += 1
                meta = pid if fid is None else (pid, fid, now, ())
                L = dcl.link
                if L.busy:
                    # Busy member: inline columnar enqueue (the
                    # dominant case at high utilization).
                    L.arrivals += 1
                    if not 0 <= cid < dcl.nclasses:
                        raise SchedulingError(
                            f"packet class {cid} out of range "
                            f"[0, {dcl.nclasses})"
                        )
                    if dcl.heads[cid] == inf:
                        dcl.heads[cid] = now
                    dcl.ccols[cid].extend((now, size, meta))
                    queues = dcl.queues
                    queues.col_count += 1
                    dcl.backlog[cid] += size
                    queues.total_packets += 1
                    if dcl.genq is not None:
                        # Generated on_enqueue (SCFQ arrival tags).
                        dcl.genq(cid, size, meta, now)
                else:
                    _chain_arrival_col(
                        dcl, cid, size, meta, now, sim, fused_heap
                    )
                    m = sim_heap[0][0] if sim_heap else inf
                    if fused_heap and fused_heap[0][0] < m:
                        m = fused_heap[0][0]
            else:
                # -- stream.emit() inlined (identical field order/values)
                packet = Packet(
                    next(stream.ids._counter),
                    stream._class_ids[head],
                    stream._sizes[head],
                    stream._times[head],
                    stream.flow_id,
                )
                stream._head = head + 1
                stream.packets_emitted += 1
                stream.bytes_emitted += packet.size
                injected += 1
                if dcl is not None:
                    if dcl.stock and dcl.link.busy:
                        # Arrival at a busy coupled member: just the
                        # inline enqueue; _chain_arrival's body minus
                        # the service start (col-aware so FIFO order
                        # never interleaves with columnar residue).
                        packet.arrived_at = now
                        dcl.link.arrivals += 1
                        cid = packet.class_id
                        if not 0 <= cid < dcl.nclasses:
                            raise SchedulingError(
                                f"packet class {cid} out of range "
                                f"[0, {dcl.nclasses})"
                            )
                        col = dcl.ccols[cid]
                        if len(col) != dcl.cheads[cid]:
                            col.extend((now, packet.size, packet))
                            dcl.queues.col_count += 1
                        else:
                            queue = dcl.qlist[cid]
                            if not queue:
                                dcl.heads[cid] = now
                            queue.append(packet)
                        dcl.backlog[cid] += packet.size
                        dcl.queues.total_packets += 1
                    else:
                        _chain_arrival(dcl, packet, now, sim, fused_heap)
                        m = sim_heap[0][0] if sim_heap else inf
                        if fused_heap and fused_heap[0][0] < m:
                            m = fused_heap[0][0]
                else:
                    stream.target.receive(packet)
                    m = sim_heap[0][0] if sim_heap else inf
                    if fused_heap and fused_heap[0][0] < m:
                        m = fused_heap[0][0]
            # -- stream.peek_time() inlined (block reload on exhaustion)
            times = stream._times
            if stream._head < len(times):
                next_time = times[stream._head]
            else:
                next_time = stream.peek_time()
            if next_time is None:
                heapq.heappop(heap)
                if not heap:
                    self.next_time = None
                    reserved = False
                    break
            elif len(heap) == 1:
                heap[0] = (next_time, order, stream)
            else:
                heapq.heapreplace(heap, (next_time, order, stream))
            nxt = heap[0][0]
            if nxt > until or m <= nxt:
                s = sim._seq
                sim._seq = s + 1
                self.next_time = nxt
                self.next_seq = s
                self._virtual = True
                break
            now = nxt
            sim.now = nxt
        self.packets_injected += injected
        return reserved

    @property
    def pending_sources(self) -> int:
        """Streams that still have arrivals to inject."""
        return len(self._heap) if self._started else len(self._streams)
