"""Compiled arrival streams: block-drawn traffic behind one cursor.

The scalar source path (:class:`~repro.traffic.source.TrafficSource`)
pays, per packet: a Generator method call for the gap, another for the
size, a Python callback dispatch, and a heap push/pop on the global
event calendar.  At the paper's operating point -- heavy-tailed sources
at 80-95% utilization -- arrivals are roughly half of all heap traffic,
so this module compiles them instead:

* Each source pre-draws interarrival gaps and packet sizes in numpy
  blocks (:meth:`~repro.traffic.base.InterarrivalProcess.draw_gaps` /
  :meth:`~repro.traffic.base.PacketSizeSampler.draw_sizes`), converts
  gaps to absolute timestamps with a carry-folded cumulative sum, and
  materializes one bounded chunk at a time, so memory stays O(chunk)
  per source regardless of horizon.
* All compiled streams aimed at a link feed one
  :class:`ArrivalCursor`, which keeps exactly *one* outstanding event
  on the simulator heap (the globally next arrival) instead of one
  pending event per source.

Equivalence contract
--------------------
The compiled path is bit-identical to the scalar path: block draws
consume each source's private random stream exactly like scalar draws
(see :mod:`repro.traffic.base`), and the carry-folded cumsum performs
the same left-to-right float additions as the scalar ``t += gap``
accumulation.  Two caveats, both satisfied by every in-repo call site
and by the :class:`~repro.sim.rng.RandomStreams` discipline:

* A source's interarrival process and size sampler must draw from
  *independent* generators (block drawing changes how their draws
  interleave, which is only invisible when the streams are separate).
* Sources whose arrivals collide at the exact same float timestamp are
  ordered by registration order on the cursor, whereas the scalar path
  orders them by event-scheduling sequence.  With continuous
  interarrival distributions exact collisions have probability zero.
"""

from __future__ import annotations

import heapq
from math import inf
from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigurationError, SchedulingError
from ..sim.engine import Simulator
from ..sim.link import Receiver, _chain_arrival, _chain_arrival_col
from ..sim.packet import Packet
from .base import InterarrivalProcess, PacketSizeSampler
from .source import PacketIdAllocator

__all__ = [
    "DEFAULT_CHUNK",
    "CompiledSource",
    "CompiledMixedSource",
    "ArrivalCursor",
]

#: Gaps/sizes materialized per block: 16 Ki doubles = 128 KiB per array,
#: small enough that dozens of sources stay cache-friendly, large enough
#: that the per-block numpy overhead amortizes to a few ns per arrival.
DEFAULT_CHUNK = 16384


class _CompiledStream:
    """Chunked absolute-timestamp timeline of one source (base class).

    Subclasses fill ``_class_ids``/``_sizes`` for each block via
    :meth:`_draw_block_payload`.  The timeline itself is shared logic:
    draw a block of gaps, fold the running carry into the first gap, and
    cumulative-sum -- which performs exactly the scalar path's
    left-to-right ``t += gap`` additions -- then truncate strictly below
    ``stop_time`` (the scalar sources' ``next_time < stop_time`` rule).
    """

    def __init__(
        self,
        target: Receiver,
        interarrivals: InterarrivalProcess,
        ids: Optional[PacketIdAllocator] = None,
        flow_id: Optional[int] = None,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
        chunk: int = DEFAULT_CHUNK,
    ) -> None:
        if stop_time is not None and stop_time <= start_time:
            raise ConfigurationError("stop_time must exceed start_time")
        if chunk < 1:
            raise ConfigurationError(f"chunk must be >= 1: {chunk}")
        self.target = target
        self.interarrivals = interarrivals
        self.ids = ids if ids is not None else PacketIdAllocator()
        self.flow_id = flow_id
        self.stop_time = stop_time
        self.chunk = chunk
        self.packets_emitted = 0
        self.bytes_emitted = 0.0
        self._carry = start_time
        self._exhausted = False
        self._times: list[float] = []
        self._class_ids: list[int] = []
        self._sizes: list[float] = []
        self._head = 0
        #: Coupled chain member behind ``target`` during an active
        #: chain-fused drain; cached per chain epoch by the drain entry
        #: (see :meth:`ArrivalCursor.drain_batch`), ``None`` otherwise.
        self._chain_dcl = None

    # -- block materialization -----------------------------------------
    def _draw_block_payload(self, count: int) -> None:
        """Fill ``_class_ids`` and ``_sizes`` for ``count`` arrivals."""
        raise NotImplementedError

    def _load_block(self) -> bool:
        """Materialize the next chunk; False when the stream is done."""
        if self._exhausted:
            return False
        chunk = self.chunk
        stop = self.stop_time
        if stop is not None:
            # Size the block to the expected remaining arrivals (+10%
            # headroom), capped at ``chunk``.  Block size never changes
            # the emitted stream -- draws are consumed in sequence
            # either way -- it only bounds how many surplus draws are
            # discarded past ``stop_time``.  Unbounded streams keep the
            # fixed chunk: every draw is eventually used.
            want = int((stop - self._carry) / self.interarrivals.mean * 1.1) + 8
            if want < chunk:
                chunk = want
        gaps = self.interarrivals.draw_gaps(chunk)
        gaps[0] += self._carry
        times = np.cumsum(gaps)
        if stop is not None and times[-1] >= stop:
            times = times[: int(np.searchsorted(times, stop, side="left"))]
            self._exhausted = True
            if not len(times):
                self._times = []
                self._head = 0
                return False
        self._carry = float(times[-1])
        self._times = times.tolist()
        self._head = 0
        self._draw_block_payload(len(times))
        return True

    # -- cursor interface ----------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending arrival, or None when done."""
        if self._head >= len(self._times) and not self._load_block():
            return None
        return self._times[self._head]

    def emit(self) -> Packet:
        """Materialize the head arrival as a Packet and advance."""
        head = self._head
        self._head = head + 1
        packet = Packet(
            packet_id=self.ids.next_id(),
            class_id=self._class_ids[head],
            size=self._sizes[head],
            created_at=self._times[head],
            flow_id=self.flow_id,
        )
        self.packets_emitted += 1
        self.bytes_emitted += packet.size
        return packet


class CompiledSource(_CompiledStream):
    """Block-drawn equivalent of :class:`~repro.traffic.source.TrafficSource`.

    One class, gaps from ``interarrivals``, sizes from ``sizes`` --
    producing the identical packet sequence (ids, times, sizes) when
    registered on an :class:`ArrivalCursor` as the scalar source
    produces through its per-arrival callbacks.
    """

    def __init__(
        self,
        target: Receiver,
        class_id: int,
        interarrivals: InterarrivalProcess,
        sizes: PacketSizeSampler,
        ids: Optional[PacketIdAllocator] = None,
        flow_id: Optional[int] = None,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
        chunk: int = DEFAULT_CHUNK,
    ) -> None:
        if class_id < 0:
            raise ConfigurationError(f"class_id must be >= 0: {class_id}")
        super().__init__(
            target, interarrivals, ids, flow_id, start_time, stop_time, chunk
        )
        self.class_id = class_id
        self.sizes = sizes

    def _draw_block_payload(self, count: int) -> None:
        self._class_ids = [self.class_id] * count
        self._sizes = self.sizes.draw_sizes(count).tolist()

    @property
    def offered_rate_bytes(self) -> float:
        """Analytic offered load in bytes per time unit."""
        return self.sizes.mean / self.interarrivals.mean


class CompiledMixedSource(_CompiledStream):
    """Block-drawn equivalent of
    :class:`~repro.network.crosstraffic.MixedClassSource`: fixed packet
    size, per-packet class drawn from a finite distribution.
    """

    def __init__(
        self,
        target: Receiver,
        interarrivals: InterarrivalProcess,
        class_probabilities: Sequence[float],
        packet_size: float,
        rng: np.random.Generator,
        ids: Optional[PacketIdAllocator] = None,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
        chunk: int = DEFAULT_CHUNK,
    ) -> None:
        probs = np.asarray(class_probabilities, dtype=float)
        if probs.ndim != 1 or not len(probs):
            raise ConfigurationError("class_probabilities must be a 1-D sequence")
        if np.any(probs < 0) or abs(float(probs.sum()) - 1.0) > 1e-9:
            raise ConfigurationError(
                f"class probabilities must be non-negative and sum to 1: {probs}"
            )
        if packet_size <= 0:
            raise ConfigurationError(f"packet_size must be positive: {packet_size}")
        super().__init__(
            target, interarrivals, ids, None, start_time, stop_time, chunk
        )
        self._cum = np.cumsum(probs)
        self.packet_size = float(packet_size)
        self._rng = rng

    def _draw_block_payload(self, count: int) -> None:
        # Same uniforms, edges and clamp as MixedClassSource._emit.
        u = self._rng.random(count)
        indices = np.searchsorted(self._cum, u, side="right")
        np.minimum(indices, len(self._cum) - 1, out=indices)
        self._class_ids = indices.tolist()
        self._sizes = [self.packet_size] * count


class ArrivalCursor:
    """Merged injection cursor over compiled streams.

    Holds a small private heap of (head timestamp, registration order,
    stream) entries and keeps exactly one pending event on the simulator
    calendar: the globally next arrival across all registered streams.

    Each calendar firing injects a *batch*: after emitting the due
    arrival it keeps going -- advancing ``sim.now`` itself -- for as
    long as the next merged arrival stays within the run horizon and
    strictly before every pending calendar event, and only then
    reschedules one event for the next arrival.  For closely spaced
    streams (small-gap CBR/on-off) this removes the per-arrival
    calendar push/pop and run-loop dispatch that used to make the
    compiled path *slower* than scalar sources; a single-stream cursor
    also skips the private-heap replace entirely.  Ties with a calendar
    event defer to the calendar (the cursor reschedules and the run
    loop interleaves by sequence number, exactly as before).

    Mirror protocol (chain drains)
    ------------------------------
    The cursor mirrors its single pending calendar event's ``(time,
    seq)`` key in ``next_time`` / ``next_seq`` -- the same contract as
    fused feeders (see :mod:`repro.sim.link`) -- and registers itself
    on every distinct target link at :meth:`start`.  A chain-fused
    drain absorbs the event when it is the global heap minimum and
    then calls :meth:`drain_batch`, which runs the batch-injection
    loop inline against an *emulated* calendar minimum so batch
    boundaries (and therefore sequence-number consumption) stay
    bit-identical to an evented run; :meth:`park` restores the real
    event with the identical key.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._streams: list[_CompiledStream] = []
        self._heap: list[tuple[float, int, _CompiledStream]] = []
        self._started = False
        self.packets_injected = 0
        #: Heap key of the pending calendar event (feeder mirror
        #: protocol); ``next_time is None`` means nothing is pending.
        self.next_time: Optional[float] = None
        self.next_seq = 0
        self._virtual = False
        #: Chain-epoch marker: the ``coupled`` dict the streams'
        #: ``_chain_dcl`` caches were resolved against.
        self._dcl_for = None

    def add(self, stream: _CompiledStream) -> _CompiledStream:
        """Register a compiled stream.  Returns it for chaining."""
        if self._started:
            raise ConfigurationError(
                "cannot add streams after the cursor started"
            )
        self._streams.append(stream)
        return stream

    def start(self) -> None:
        """Schedule the first merged arrival.  Idempotent."""
        if self._started:
            return
        self._started = True
        for order, stream in enumerate(self._streams):
            first = stream.peek_time()
            if first is not None:
                self._heap.append((first, order, stream))
            # Register with the target for chain-drain absorption;
            # plain receivers (sinks, demuxes) have no _attach_cursor.
            attach = getattr(stream.target, "_attach_cursor", None)
            if attach is not None:
                attach(self)
        heapq.heapify(self._heap)
        if self._heap:
            sim = self.sim
            first = self._heap[0][0]
            self.next_time = first
            self.next_seq = sim._seq
            sim.schedule(first, self._fire)

    def _fire(self) -> None:
        sim = self.sim
        heap = self._heap
        sim_heap = sim._heap
        until = sim._run_until
        injected = 0
        while True:
            _, order, stream = heap[0]
            packet = stream.emit()
            injected += 1
            stream.target.receive(packet)
            next_time = stream.peek_time()
            if next_time is None:
                heapq.heappop(heap)
                if not heap:
                    self.next_time = None
                    break
            elif len(heap) == 1:
                heap[0] = (next_time, order, stream)
            else:
                heapq.heapreplace(heap, (next_time, order, stream))
            nxt = heap[0][0]
            if nxt > until or (sim_heap and sim_heap[0][0] <= nxt):
                self.next_time = nxt
                self.next_seq = sim._seq
                sim.schedule(nxt, self._fire)
                break
            sim.now = nxt
        self.packets_injected += injected

    def park(self, heap: list) -> None:
        """Re-push the pending arrival event after virtual absorption.

        The pushed entry is bit-identical to the one an evented run
        would hold (same time, same reserved sequence number, same
        callback), so the calendar state after a chain-drain park is
        indistinguishable from the evented path's.  No-op unless the
        cursor's event was absorbed (``_virtual``).
        """
        if self._virtual:
            self._virtual = False
            if self.next_time is not None:
                heapq.heappush(
                    heap, (self.next_time, self.next_seq, self._fire, None)
                )

    def drain_batch(self, now, until, sim_heap, fused_heap, coupled) -> bool:
        """Inline one :meth:`_fire` batch from a chain-fused drain.

        ``now`` is the absorbed event's timestamp (``sim.now`` is
        already there); ``fused_heap`` holds the drain's pending
        ``(time, seq, ...)`` events, which together with ``sim_heap``
        reproduce exactly the calendar an evented run would consult --
        so the batch boundary test (and hence every ``sim._seq``
        consumption) is bit-identical to :meth:`_fire`.  Emissions
        whose target is a coupled chain member (``coupled``, the
        drain's id -> member map) are handed straight to
        :func:`~repro.sim.link._chain_arrival` (inline enqueue +
        service start); all others go through plain ``receive``.
        Returns True when a next arrival was reserved (mirror updated,
        virtual); False when the cursor is exhausted.
        """
        sim = self.sim
        heap = self._heap
        injected = 0
        reserved = True
        if self._dcl_for is not coupled:
            # New chain epoch: re-resolve each stream's target against
            # this chain's coupled-member map once, so the per-packet
            # path below is a single attribute load.
            self._dcl_for = coupled
            for s in self._streams:
                s._chain_dcl = coupled.get(id(s.target))
        # The earliest foreign event bounds the batch.  Neither heap
        # can change under the inline-enqueue fast path below, so the
        # bound is hoisted and recomputed only after a dispatch that
        # may schedule (receive) or push a fused completion
        # (_chain_arrival).
        m = sim_heap[0][0] if sim_heap else inf
        if fused_heap and fused_heap[0][0] < m:
            m = fused_heap[0][0]
        while True:
            entry = heap[0]
            order = entry[1]
            stream = entry[2]
            head = stream._head
            dcl = stream._chain_dcl
            if dcl is not None and dcl.colmode:
                # -- columnar emit: the arrival enters the member's
                # per-class column as scalars; no Packet is built.  The
                # heap key equals _times[head], so created == arrived
                # == now and an int meta (flow-less) loses nothing.
                pid = next(stream.ids._counter)
                cid = stream._class_ids[head]
                size = stream._sizes[head]
                fid = stream.flow_id
                stream._head = head + 1
                stream.packets_emitted += 1
                stream.bytes_emitted += size
                injected += 1
                meta = pid if fid is None else (pid, fid, now, ())
                L = dcl.link
                if L.busy:
                    # Busy member: inline columnar enqueue (the
                    # dominant case at high utilization).
                    L.arrivals += 1
                    if not 0 <= cid < dcl.nclasses:
                        raise SchedulingError(
                            f"packet class {cid} out of range "
                            f"[0, {dcl.nclasses})"
                        )
                    if dcl.heads[cid] == inf:
                        dcl.heads[cid] = now
                    dcl.ccols[cid].extend((now, size, meta))
                    queues = dcl.queues
                    queues.col_count += 1
                    dcl.backlog[cid] += size
                    queues.total_packets += 1
                    if dcl.genq is not None:
                        # Generated on_enqueue (SCFQ arrival tags).
                        dcl.genq(cid, size, meta, now)
                else:
                    _chain_arrival_col(
                        dcl, cid, size, meta, now, sim, fused_heap
                    )
                    m = sim_heap[0][0] if sim_heap else inf
                    if fused_heap and fused_heap[0][0] < m:
                        m = fused_heap[0][0]
            else:
                # -- stream.emit() inlined (identical field order/values)
                packet = Packet(
                    next(stream.ids._counter),
                    stream._class_ids[head],
                    stream._sizes[head],
                    stream._times[head],
                    stream.flow_id,
                )
                stream._head = head + 1
                stream.packets_emitted += 1
                stream.bytes_emitted += packet.size
                injected += 1
                if dcl is not None:
                    if dcl.stock and dcl.link.busy:
                        # Arrival at a busy coupled member: just the
                        # inline enqueue; _chain_arrival's body minus
                        # the service start (col-aware so FIFO order
                        # never interleaves with columnar residue).
                        packet.arrived_at = now
                        dcl.link.arrivals += 1
                        cid = packet.class_id
                        if not 0 <= cid < dcl.nclasses:
                            raise SchedulingError(
                                f"packet class {cid} out of range "
                                f"[0, {dcl.nclasses})"
                            )
                        col = dcl.ccols[cid]
                        if len(col) != dcl.cheads[cid]:
                            col.extend((now, packet.size, packet))
                            dcl.queues.col_count += 1
                        else:
                            queue = dcl.qlist[cid]
                            if not queue:
                                dcl.heads[cid] = now
                            queue.append(packet)
                        dcl.backlog[cid] += packet.size
                        dcl.queues.total_packets += 1
                    else:
                        _chain_arrival(dcl, packet, now, sim, fused_heap)
                        m = sim_heap[0][0] if sim_heap else inf
                        if fused_heap and fused_heap[0][0] < m:
                            m = fused_heap[0][0]
                else:
                    stream.target.receive(packet)
                    m = sim_heap[0][0] if sim_heap else inf
                    if fused_heap and fused_heap[0][0] < m:
                        m = fused_heap[0][0]
            # -- stream.peek_time() inlined (block reload on exhaustion)
            times = stream._times
            if stream._head < len(times):
                next_time = times[stream._head]
            else:
                next_time = stream.peek_time()
            if next_time is None:
                heapq.heappop(heap)
                if not heap:
                    self.next_time = None
                    reserved = False
                    break
            elif len(heap) == 1:
                heap[0] = (next_time, order, stream)
            else:
                heapq.heapreplace(heap, (next_time, order, stream))
            nxt = heap[0][0]
            if nxt > until or m <= nxt:
                s = sim._seq
                sim._seq = s + 1
                self.next_time = nxt
                self.next_seq = s
                self._virtual = True
                break
            now = nxt
            sim.now = nxt
        self.packets_injected += injected
        return reserved

    @property
    def pending_sources(self) -> int:
        """Streams that still have arrivals to inject."""
        return len(self._heap) if self._started else len(self._streams)
