"""ECN-reactive rate-adaptive source -- the paper's stability assumption.

Section 3 justifies the lossless, stable, high-utilization operating
regime by assuming "sources that react to the Explicit Congestion
Notification (ECN) bit, without requiring loss-induced congestion
control".  This module implements that closed loop so the assumption
can be *exercised* rather than postulated:

* :class:`ECNMarker` -- attached to a link, it marks departures whose
  hop experienced a queue above a threshold (packets queued at service
  start), the standard instantaneous-queue ECN policy.
* :class:`ECNSource` -- an AIMD-paced packet source: rate is cut
  multiplicatively when a recent packet was marked, and increased
  additively otherwise, between configurable floor and ceiling rates.

With a population of ECN sources the link settles near a target
utilization with bounded queues and zero losses -- the operating point
of every experiment in the paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..sim.engine import Simulator
from ..sim.link import Link, Receiver
from ..sim.packet import Packet
from ..traffic.base import PacketSizeSampler
from ..traffic.source import PacketIdAllocator

__all__ = ["ECNMarker", "ECNSource"]


class ECNMarker:
    """Marks packets that saw a congested queue at their hop.

    Attach to a link with ``link.add_monitor(marker)``.  A departure is
    marked when the link's backlog at the packet's *service start*
    exceeded ``threshold_packets``; since the monitor runs at departure
    time, the backlog right now (still excluding the departed packet)
    is the closest observable proxy and is what real ECN AQMs use.
    Sources poll :meth:`consume_mark`.
    """

    def __init__(self, link: Link, threshold_packets: int) -> None:
        if threshold_packets < 1:
            raise ConfigurationError("threshold_packets must be >= 1")
        self.link = link
        self.threshold_packets = threshold_packets
        self.marked = 0
        self.seen = 0
        #: Pending mark flags per flow_id (None key = unattributed).
        self._pending: dict[Optional[int], bool] = {}

    def on_departure(self, packet: Packet, now: float) -> None:
        self.seen += 1
        congested = self.link.backlog_packets >= self.threshold_packets
        if congested:
            self.marked += 1
            self._pending[packet.flow_id] = True

    def consume_mark(self, flow_id: Optional[int]) -> bool:
        """True once per congestion signal for this flow since last poll."""
        return self._pending.pop(flow_id, False)

    @property
    def mark_fraction(self) -> float:
        """Fraction of departures marked so far."""
        return self.marked / self.seen if self.seen else 0.0


class ECNSource:
    """AIMD-paced source reacting to ECN marks instead of losses."""

    def __init__(
        self,
        sim: Simulator,
        target: Receiver,
        marker: ECNMarker,
        class_id: int,
        sizes: PacketSizeSampler,
        initial_rate: float,
        min_rate: float,
        max_rate: float,
        additive_increase: float,
        multiplicative_decrease: float = 0.5,
        flow_id: Optional[int] = None,
        ids: Optional[PacketIdAllocator] = None,
        jitter_rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0 < min_rate <= initial_rate <= max_rate:
            raise ConfigurationError(
                "need 0 < min_rate <= initial_rate <= max_rate"
            )
        if additive_increase <= 0:
            raise ConfigurationError("additive_increase must be positive")
        if not 0 < multiplicative_decrease < 1:
            raise ConfigurationError(
                "multiplicative_decrease must be in (0, 1)"
            )
        self.sim = sim
        self.target = target
        self.marker = marker
        self.class_id = class_id
        self.sizes = sizes
        self.rate = float(initial_rate)          # bytes per time unit
        self.min_rate = float(min_rate)
        self.max_rate = float(max_rate)
        self.additive_increase = float(additive_increase)
        self.multiplicative_decrease = float(multiplicative_decrease)
        self.flow_id = flow_id
        self.ids = ids if ids is not None else PacketIdAllocator()
        self._jitter = jitter_rng
        self.packets_emitted = 0
        self.rate_history: list[tuple[float, float]] = []
        self._started = False

    def start(self) -> None:
        """Schedule the first emission.  Idempotent."""
        if self._started:
            return
        self._started = True
        self.sim.schedule(self.sim.now + self._gap(), self._emit)

    def _gap(self) -> float:
        gap = self.sizes.mean / self.rate
        if self._jitter is not None:
            gap *= 0.5 + self._jitter.random()  # +-50% pacing jitter
        return gap

    def _emit(self) -> None:
        now = self.sim.now
        packet = Packet(
            packet_id=self.ids.next_id(),
            class_id=self.class_id,
            size=self.sizes.next_size(),
            created_at=now,
            flow_id=self.flow_id,
        )
        self.packets_emitted += 1
        self.target.receive(packet)
        # AIMD update on the congestion signal accumulated since the
        # last emission.
        if self.marker.consume_mark(self.flow_id):
            self.rate = max(
                self.min_rate, self.rate * self.multiplicative_decrease
            )
        else:
            self.rate = min(self.max_rate, self.rate + self.additive_increase)
        self.rate_history.append((now, self.rate))
        self.sim.schedule(now + self._gap(), self._emit)
