"""Class load distributions.

A :class:`ClassLoadDistribution` is the fraction of the aggregate load
carried by each class.  The paper's default is 40/30/20/10 % for classes
1..4; Figure 2 sweeps seven distributions at 95% utilization.  Helpers
here validate the shares and convert (utilization, shares, capacity,
mean packet size) into per-class mean interarrival gaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError

__all__ = [
    "ClassLoadDistribution",
    "PAPER_DEFAULT_LOADS",
    "FIGURE2_LOAD_DISTRIBUTIONS",
    "uniform_loads",
]


@dataclass(frozen=True)
class ClassLoadDistribution:
    """Per-class shares of the aggregate offered load (sum to 1)."""

    shares: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.shares:
            raise ConfigurationError("need at least one class share")
        if any(s <= 0 for s in self.shares):
            raise ConfigurationError(
                f"class shares must be positive: {self.shares}"
            )
        total = sum(self.shares)
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(
                f"class shares must sum to 1, got {total}: {self.shares}"
            )

    @property
    def num_classes(self) -> int:
        return len(self.shares)

    def class_rates(
        self,
        utilization: float,
        capacity: float,
        mean_packet_size: float,
    ) -> list[float]:
        """Per-class packet arrival rates achieving ``utilization``.

        The utilization factor is the paper's: mean service time over
        mean aggregate interarrival, i.e. rho = lambda * E[L] / R.
        """
        if not 0 < utilization:
            raise ConfigurationError(f"utilization must be positive: {utilization}")
        if capacity <= 0 or mean_packet_size <= 0:
            raise ConfigurationError("capacity and packet size must be positive")
        aggregate_rate = utilization * capacity / mean_packet_size
        return [share * aggregate_rate for share in self.shares]

    def mean_gaps(
        self,
        utilization: float,
        capacity: float,
        mean_packet_size: float,
    ) -> list[float]:
        """Per-class mean interarrival gaps for ``utilization``."""
        return [
            1.0 / rate
            for rate in self.class_rates(utilization, capacity, mean_packet_size)
        ]

    def label(self) -> str:
        """Compact percentage label, e.g. ``40/30/20/10``."""
        return "/".join(f"{share * 100:g}" for share in self.shares)


def uniform_loads(num_classes: int) -> ClassLoadDistribution:
    """Equal share per class."""
    if num_classes < 1:
        raise ConfigurationError("num_classes must be >= 1")
    return ClassLoadDistribution(tuple([1.0 / num_classes] * num_classes))


#: The paper's default 4-class distribution (class 1 carries the most).
PAPER_DEFAULT_LOADS = ClassLoadDistribution((0.4, 0.3, 0.2, 0.1))

#: The seven distributions swept in Figure 2 (bars, left to right).  The
#: printed figure labels them by the four class fractions; the exact
#: seven tuples are not enumerated in the text, so we use a symmetric
#: sweep from "low classes loaded" through uniform to "high classes
#: loaded", which reproduces the phenomenon the figure demonstrates
#: (WTP insensitive, BPR biased against heavily loaded classes).
FIGURE2_LOAD_DISTRIBUTIONS: tuple[ClassLoadDistribution, ...] = tuple(
    ClassLoadDistribution(shares)
    for shares in (
        (0.70, 0.10, 0.10, 0.10),
        (0.40, 0.30, 0.20, 0.10),
        (0.40, 0.40, 0.10, 0.10),
        (0.25, 0.25, 0.25, 0.25),
        (0.10, 0.10, 0.40, 0.40),
        (0.10, 0.20, 0.30, 0.40),
        (0.10, 0.10, 0.10, 0.70),
    )
)
