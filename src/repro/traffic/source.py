"""Traffic sources: bind an interarrival process and a size sampler to a
class and feed packets into a receiver (usually a link).

A :class:`TrafficSource` schedules its own arrival events on the
simulator, one at a time, so arbitrarily many sources multiplex onto the
same event calendar.  ``packet_id`` values are unique per source via a
(source_id, counter) pairing flattened into one integer namespace by the
:class:`PacketIdAllocator`.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..errors import ConfigurationError
from ..sim.engine import Simulator
from ..sim.link import Receiver
from ..sim.packet import Packet
from .base import InterarrivalProcess, PacketSizeSampler

__all__ = ["TrafficSource", "PacketIdAllocator"]


class PacketIdAllocator:
    """Monotonically increasing packet ids shared across sources."""

    def __init__(self) -> None:
        self._counter = itertools.count()

    def next_id(self) -> int:
        return next(self._counter)


class TrafficSource:
    """Open-loop packet source for one class."""

    def __init__(
        self,
        sim: Simulator,
        target: Receiver,
        class_id: int,
        interarrivals: InterarrivalProcess,
        sizes: PacketSizeSampler,
        ids: Optional[PacketIdAllocator] = None,
        flow_id: Optional[int] = None,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
    ) -> None:
        if class_id < 0:
            raise ConfigurationError(f"class_id must be >= 0: {class_id}")
        if stop_time is not None and stop_time <= start_time:
            raise ConfigurationError("stop_time must exceed start_time")
        self.sim = sim
        self.target = target
        self.class_id = class_id
        self.interarrivals = interarrivals
        self.sizes = sizes
        self.ids = ids if ids is not None else PacketIdAllocator()
        self.flow_id = flow_id
        self.stop_time = stop_time
        self.packets_emitted = 0
        self.bytes_emitted = 0.0
        self._started = False
        self._start_time = start_time

    def start(self) -> None:
        """Schedule the first arrival.  Idempotent."""
        if self._started:
            return
        self._started = True
        first = self._start_time + self.interarrivals.next_gap()
        if self.stop_time is None or first < self.stop_time:
            self.sim.schedule(first, self._emit)

    def _emit(self) -> None:
        now = self.sim.now
        packet = Packet(
            packet_id=self.ids.next_id(),
            class_id=self.class_id,
            size=self.sizes.next_size(),
            created_at=now,
            flow_id=self.flow_id,
        )
        self.packets_emitted += 1
        self.bytes_emitted += packet.size
        self.target.receive(packet)
        next_time = now + self.interarrivals.next_gap()
        if self.stop_time is None or next_time < self.stop_time:
            self.sim.schedule(next_time, self._emit)

    @property
    def offered_rate_bytes(self) -> float:
        """Analytic offered load in bytes per time unit."""
        return self.sizes.mean / self.interarrivals.mean
