"""Traffic sources: bind an interarrival process and a size sampler to a
class and feed packets into a receiver (usually a link).

A :class:`TrafficSource` schedules its own arrival events on the
simulator, one at a time, so arbitrarily many sources multiplex onto the
same event calendar.  ``packet_id`` values are unique per source via a
(source_id, counter) pairing flattened into one integer namespace by the
:class:`PacketIdAllocator`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Optional

from ..errors import ConfigurationError
from ..sim.engine import Simulator
from ..sim.link import Receiver
from ..sim.packet import Packet
from .base import InterarrivalProcess, PacketSizeSampler

__all__ = ["TrafficSource", "PacketIdAllocator"]


class PacketIdAllocator:
    """Monotonically increasing packet ids shared across sources."""

    def __init__(self) -> None:
        self._counter = itertools.count()

    def next_id(self) -> int:
        return next(self._counter)


class TrafficSource:
    """Open-loop packet source for one class.

    Implements the link feeder protocol (see
    :meth:`~repro.sim.link.Link.attach_feeder`): each scheduled arrival
    event's heap key is mirrored in ``next_time`` / ``next_seq`` so a
    drain-enabled target link can absorb the event and pull subsequent
    arrivals inline.  Random draws happen in exactly the evented order
    (packet size at emission, then the next gap), so fused and evented
    runs consume the generators identically.
    """

    def __init__(
        self,
        sim: Simulator,
        target: Receiver,
        class_id: int,
        interarrivals: InterarrivalProcess,
        sizes: PacketSizeSampler,
        ids: Optional[PacketIdAllocator] = None,
        flow_id: Optional[int] = None,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
    ) -> None:
        if class_id < 0:
            raise ConfigurationError(f"class_id must be >= 0: {class_id}")
        if stop_time is not None and stop_time <= start_time:
            raise ConfigurationError("stop_time must exceed start_time")
        self.sim = sim
        self.target = target
        self.class_id = class_id
        self.interarrivals = interarrivals
        self.sizes = sizes
        self.ids = ids if ids is not None else PacketIdAllocator()
        self.flow_id = flow_id
        self.stop_time = stop_time
        self.packets_emitted = 0
        self.bytes_emitted = 0.0
        self._started = False
        self._start_time = start_time
        # Feeder-protocol state: heap-key mirror of the pending arrival
        # event, and whether the drain currently holds it virtually.
        self.next_time: Optional[float] = None
        self.next_seq = 0
        self._virtual = False
        # Gap buffering (enabled only when fused to a drain-enabled
        # link): gaps are drawn in blocks via ``draw_gaps``, which every
        # interarrival process implements with the same stream
        # consumption as repeated scalar draws, so buffered and scalar
        # runs see bit-identical gap sequences.  This does require the
        # interarrival and size samplers to own independent generators
        # (the RandomStreams discipline, same constraint the compiled
        # arrival path documents) because block drawing reorders draws
        # *across* streams, never within one.
        self._buffered = False
        self._gap_buffer: list[float] = []
        self._gap_index = 0
        # Size draws are block-buffered under the same discipline (and
        # the same caveat): ``draw_sizes`` consumes the size stream
        # exactly like repeated ``next_size`` calls, so buffered and
        # scalar runs see bit-identical size sequences.
        self._size_buffer: list[float] = []
        self._size_index = 0

    def start(self) -> None:
        """Schedule the first arrival.  Idempotent."""
        if self._started:
            return
        self._started = True
        attach = getattr(self.target, "attach_feeder", None)
        if attach is not None and attach(self):
            self._buffered = True
        first = self._start_time + self._next_gap()
        if self.stop_time is None or first < self.stop_time:
            self.next_time = first
            self.next_seq = self.sim._seq
            self.sim.schedule(first, self._emit)

    _GAP_BLOCK = 512

    def _next_gap(self) -> float:
        """One interarrival gap, via the block buffer when fused."""
        if not self._buffered:
            return self.interarrivals.next_gap()
        i = self._gap_index
        buffer = self._gap_buffer
        if i == len(buffer):
            buffer = self.interarrivals.draw_gaps(self._GAP_BLOCK).tolist()
            self._gap_buffer = buffer
            i = 0
        self._gap_index = i + 1
        return buffer[i]

    def _next_size(self) -> float:
        """One packet size, via the block buffer when fused."""
        if not self._buffered:
            return self.sizes.next_size()
        i = self._size_index
        buffer = self._size_buffer
        if i == len(buffer):
            buffer = self.sizes.draw_sizes(self._GAP_BLOCK).tolist()
            self._size_buffer = buffer
            i = 0
        self._size_index = i + 1
        return buffer[i]

    def _emit(self) -> None:
        now = self.sim.now
        packet = Packet(
            packet_id=self.ids.next_id(),
            class_id=self.class_id,
            size=self._next_size(),
            created_at=now,
            flow_id=self.flow_id,
        )
        self.packets_emitted += 1
        self.bytes_emitted += packet.size
        self.target.receive(packet)
        next_time = now + self._next_gap()
        if self.stop_time is None or next_time < self.stop_time:
            self.next_time = next_time
            self.next_seq = self.sim._seq
            self.sim.schedule(next_time, self._emit)
        else:
            self.next_time = None

    # -- feeder protocol (drain kernel) --------------------------------
    def pull(self) -> Packet:
        """Packet for the pending arrival (drain-inline counterpart of
        the emission half of :meth:`_emit`)."""
        packet = Packet(
            packet_id=self.ids.next_id(),
            class_id=self.class_id,
            size=self._next_size(),
            created_at=self.next_time,
            flow_id=self.flow_id,
        )
        self.packets_emitted += 1
        self.bytes_emitted += packet.size
        return packet

    def advance(self, now: float) -> None:
        """Reserve the next arrival's heap key without scheduling it."""
        # advance() only runs while fused, so the buffer is active;
        # inline the _next_gap body (this is the drain's hot path).
        i = self._gap_index
        buffer = self._gap_buffer
        if i == len(buffer):
            buffer = self.interarrivals.draw_gaps(self._GAP_BLOCK).tolist()
            self._gap_buffer = buffer
            i = 0
        self._gap_index = i + 1
        next_time = now + buffer[i]
        if self.stop_time is None or next_time < self.stop_time:
            sim = self.sim
            self.next_time = next_time
            self.next_seq = sim._seq
            sim._seq += 1
        else:
            self.next_time = None

    def pull_col(self, now: float) -> tuple:
        """Columnar pull: ``pull() + advance(now)`` without the Packet.

        Returns ``(packet_id, class_id, size)`` for the pending arrival
        and advances to the next one in a single call; the columnar
        drain loops store the scalars directly in a
        :class:`~repro.sim.queues.ClassQueueSet` column.  Draw order
        (size at emission, then the next gap) matches the evented path
        exactly.  Because the fold reserves the *next arrival's*
        sequence number here, a caller opening an idle busy period must
        reserve the completion's sequence number *before* calling (the
        evented path schedules the completion inside ``receive``, ahead
        of the next arrival) -- the drain loops do.
        """
        i = self._size_index
        buffer = self._size_buffer
        if i == len(buffer):
            buffer = self.sizes.draw_sizes(self._GAP_BLOCK).tolist()
            self._size_buffer = buffer
            i = 0
        self._size_index = i + 1
        size = buffer[i]
        self.packets_emitted += 1
        self.bytes_emitted += size
        pid = next(self.ids._counter)
        i = self._gap_index
        buffer = self._gap_buffer
        if i == len(buffer):
            buffer = self.interarrivals.draw_gaps(self._GAP_BLOCK).tolist()
            self._gap_buffer = buffer
            i = 0
        self._gap_index = i + 1
        next_time = now + buffer[i]
        if self.stop_time is None or next_time < self.stop_time:
            sim = self.sim
            self.next_time = next_time
            self.next_seq = sim._seq
            sim._seq += 1
        else:
            self.next_time = None
        return pid, self.class_id, size

    def park(self, heap: list) -> None:
        """Push the virtually-held arrival back onto the calendar."""
        if self._virtual:
            self._virtual = False
            if self.next_time is not None:
                heapq.heappush(
                    heap, (self.next_time, self.next_seq, self._emit, None)
                )

    @property
    def offered_rate_bytes(self) -> float:
        """Analytic offered load in bytes per time unit."""
        return self.sizes.mean / self.interarrivals.mean
