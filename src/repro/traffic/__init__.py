"""Traffic models: interarrival processes, packet sizes, load mixes."""

from .base import InterarrivalProcess, PacketSizeSampler
from .compile import (
    DEFAULT_CHUNK,
    ArrivalCursor,
    CompiledMixedSource,
    CompiledSource,
)
from .deterministic import ConstantInterarrivals
from .ecn import ECNMarker, ECNSource
from .io import load_trace, load_trace_csv, save_trace, save_trace_csv
from .mix import (
    FIGURE2_LOAD_DISTRIBUTIONS,
    PAPER_DEFAULT_LOADS,
    ClassLoadDistribution,
    uniform_loads,
)
from .mmpp import MMPPInterarrivals
from .onoff import OnOffInterarrivals
from .pareto import PAPER_PARETO_SHAPE, ParetoInterarrivals
from .poisson import PoissonInterarrivals
from .sizes import DiscretePacketSizes, FixedPacketSize, paper_trimodal_sizes
from .source import PacketIdAllocator, TrafficSource

__all__ = [
    "InterarrivalProcess",
    "PacketSizeSampler",
    "ArrivalCursor",
    "CompiledMixedSource",
    "CompiledSource",
    "DEFAULT_CHUNK",
    "ConstantInterarrivals",
    "ECNMarker",
    "ECNSource",
    "load_trace",
    "load_trace_csv",
    "save_trace",
    "save_trace_csv",
    "ClassLoadDistribution",
    "PAPER_DEFAULT_LOADS",
    "FIGURE2_LOAD_DISTRIBUTIONS",
    "uniform_loads",
    "MMPPInterarrivals",
    "OnOffInterarrivals",
    "ParetoInterarrivals",
    "PAPER_PARETO_SHAPE",
    "PoissonInterarrivals",
    "DiscretePacketSizes",
    "FixedPacketSize",
    "paper_trimodal_sizes",
    "PacketIdAllocator",
    "TrafficSource",
]
