"""Arrival traces: precomputed (time, class, size) arrival streams.

Traces serve two purposes that mirror the paper's methodology:

* The *same* arrival stream can be replayed through different schedulers
  (the microscopic views in Figures 4 and 5 show BPR and WTP on "the
  same arriving packet streams in each class").
* Feasibility verification (Eq 7) needs the FCFS delay of every class
  *subset* of the very traffic being scheduled; filtering a trace by
  class and running the Lindley recursion gives exactly that.

A trace is three aligned numpy arrays sorted by arrival time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..sim.engine import Simulator
from ..sim.link import Receiver
from ..sim.packet import Packet
from .base import InterarrivalProcess, PacketSizeSampler
from .compile import DEFAULT_CHUNK

__all__ = ["ArrivalTrace", "TraceSource", "build_class_trace", "merge_traces"]


@dataclass(frozen=True)
class ArrivalTrace:
    """Aligned arrays of arrival times, class ids and sizes (time-sorted)."""

    times: np.ndarray
    class_ids: np.ndarray
    sizes: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.times) == len(self.class_ids) == len(self.sizes)):
            raise ConfigurationError("trace arrays must have equal length")
        if len(self.times) > 1 and np.any(np.diff(self.times) < 0):
            raise ConfigurationError("trace times must be sorted")

    def __len__(self) -> int:
        return len(self.times)

    @property
    def num_classes(self) -> int:
        return int(self.class_ids.max()) + 1 if len(self) else 0

    def filter_classes(self, subset: Sequence[int]) -> "ArrivalTrace":
        """Sub-trace containing only the given classes (order kept)."""
        mask = np.isin(self.class_ids, np.asarray(subset, dtype=self.class_ids.dtype))
        return ArrivalTrace(
            self.times[mask], self.class_ids[mask], self.sizes[mask]
        )

    def class_rates(self, horizon: Optional[float] = None) -> list[float]:
        """Empirical per-class packet arrival rates over the horizon."""
        if not len(self):
            return []
        span = horizon if horizon is not None else float(self.times[-1])
        if span <= 0:
            raise ConfigurationError("horizon must be positive")
        counts = np.bincount(self.class_ids, minlength=self.num_classes)
        return [float(c) / span for c in counts]

    def offered_load(self, capacity: float, horizon: Optional[float] = None) -> float:
        """Empirical utilization: offered bytes / (capacity * horizon)."""
        if not len(self):
            return 0.0
        span = horizon if horizon is not None else float(self.times[-1])
        return float(self.sizes.sum()) / (capacity * span)


def build_class_trace(
    class_id: int,
    interarrivals: InterarrivalProcess,
    sizes: PacketSizeSampler,
    horizon: float,
    start_time: float = 0.0,
    compiled: bool = True,
    chunk: int = DEFAULT_CHUNK,
) -> ArrivalTrace:
    """Generate one class's arrivals on [start_time, horizon).

    ``compiled=True`` (the default) draws gaps and sizes in numpy blocks
    of ``chunk`` and converts gaps to timestamps with a carry-folded
    cumulative sum.  The output is bit-identical to the scalar loop:
    block draws consume each private random stream exactly like scalar
    draws, and folding the running time into the first gap before
    ``np.cumsum`` performs the same left-to-right float additions as the
    scalar ``t += gap`` accumulation.  (Gaps and sizes must come from
    independent generators -- the :class:`~repro.sim.rng.RandomStreams`
    discipline -- because block drawing reorders draws *across* the two
    streams, though never within one.)  Memory stays O(chunk) beyond the
    returned arrays.  ``compiled=False`` keeps the scalar loop for A/B
    comparison.
    """
    if horizon <= start_time:
        raise ConfigurationError("horizon must exceed start_time")
    if not compiled:
        times: list[float] = []
        t = start_time + interarrivals.next_gap()
        while t < horizon:
            times.append(t)
            t += interarrivals.next_gap()
        count = len(times)
        return ArrivalTrace(
            np.asarray(times),
            np.full(count, class_id, dtype=np.int64),
            np.asarray([sizes.next_size() for _ in range(count)]),
        )
    if chunk < 1:
        raise ConfigurationError(f"chunk must be >= 1: {chunk}")
    time_blocks: list[np.ndarray] = []
    size_blocks: list[np.ndarray] = []
    carry = start_time
    mean_gap = interarrivals.mean
    while True:
        # Size each block to the expected remaining arrivals (+10%
        # headroom), capped at ``chunk``.  Block size never changes the
        # output -- draws are consumed in sequence either way -- it only
        # bounds how many surplus draws are discarded past the horizon.
        want = int((horizon - carry) / mean_gap * 1.1) + 8
        gaps = interarrivals.draw_gaps(want if want < chunk else chunk)
        gaps[0] += carry
        block = np.cumsum(gaps)
        if block[-1] >= horizon:
            block = block[: int(np.searchsorted(block, horizon, side="left"))]
            if len(block):
                time_blocks.append(block)
                size_blocks.append(sizes.draw_sizes(len(block)))
            break
        carry = float(block[-1])
        time_blocks.append(block)
        size_blocks.append(sizes.draw_sizes(len(block)))
    if not time_blocks:
        empty = np.empty(0, dtype=np.float64)
        return ArrivalTrace(empty, np.empty(0, dtype=np.int64), empty.copy())
    times_arr = np.concatenate(time_blocks)
    return ArrivalTrace(
        times_arr,
        np.full(len(times_arr), class_id, dtype=np.int64),
        np.concatenate(size_blocks),
    )


def merge_traces(traces: Sequence[ArrivalTrace]) -> ArrivalTrace:
    """Merge per-class traces into one time-sorted aggregate trace."""
    non_empty = [t for t in traces if len(t)]
    if not non_empty:
        raise ConfigurationError("nothing to merge")
    times = np.concatenate([t.times for t in non_empty])
    class_ids = np.concatenate([t.class_ids for t in non_empty])
    sizes = np.concatenate([t.sizes for t in non_empty])
    order = np.argsort(times, kind="stable")
    return ArrivalTrace(times[order], class_ids[order], sizes[order])


class TraceSource:
    """Replays an :class:`ArrivalTrace` into a receiver via the kernel.

    The replay is lazy -- exactly one pending heap entry at a time, the
    next arrival -- so a million-packet trace never bloats the event
    calendar.  ``start`` batch-converts the numpy arrays to plain Python
    lists once (one C-level pass) so the per-packet hot path does no
    numpy scalar indexing, which costs an order of magnitude more than
    a list index.

    The source implements the link's feeder protocol (see
    :meth:`~repro.sim.link.Link.attach_feeder`): every scheduled
    arrival's heap key is mirrored in ``next_time`` / ``next_seq`` so a
    target link's busy-period drain kernel can absorb the event and
    pull subsequent arrivals inline.  The mirror is passive -- when the
    target is not a drain-enabled link the source behaves exactly as
    before.
    """

    def __init__(
        self,
        sim: Simulator,
        target: Receiver,
        trace: ArrivalTrace,
        first_packet_id: int = 0,
    ) -> None:
        self.sim = sim
        self.target = target
        self.trace = trace
        self.first_packet_id = first_packet_id
        #: Replayed packets carry no flow tag (read by columnar drains).
        self.flow_id: Optional[int] = None
        self._cursor = 0
        self._times: list[float] = []
        self._class_ids: list[int] = []
        self._sizes: list[float] = []
        self._count = 0
        # Feeder-protocol state: heap-key mirror of the pending arrival
        # event, and whether the drain currently holds it virtually
        # (popped off the calendar, to be re-parked on drain exit).
        self.next_time: Optional[float] = None
        self.next_seq = 0
        self._virtual = False

    def start(self) -> None:
        """Schedule the first replayed arrival.  Idempotent."""
        if self._cursor == 0 and not self._times and len(self.trace):
            self._times = self.trace.times.tolist()
            self._class_ids = self.trace.class_ids.tolist()
            self._sizes = self.trace.sizes.tolist()
            self._count = len(self._times)
            attach = getattr(self.target, "attach_feeder", None)
            if attach is not None:
                attach(self)
            self.next_time = self._times[0]
            self.next_seq = self.sim._seq
            self.sim.schedule(self._times[0], self._emit)

    def _emit(self) -> None:
        index = self._cursor
        times = self._times
        packet = Packet(
            self.first_packet_id + index,
            self._class_ids[index],
            self._sizes[index],
            times[index],
        )
        self._cursor = index = index + 1
        self.target.receive(packet)
        if index < len(times):
            self.next_time = times[index]
            self.next_seq = self.sim._seq
            self.sim.schedule(times[index], self._emit)
        else:
            self.next_time = None

    # -- feeder protocol (drain kernel) --------------------------------
    def pull(self) -> Packet:
        """Packet for the pending arrival (drain-inline counterpart of
        the emission half of :meth:`_emit`)."""
        index = self._cursor
        packet = Packet(
            self.first_packet_id + index,
            self._class_ids[index],
            self._sizes[index],
            self._times[index],
        )
        self._cursor = index + 1
        return packet

    def advance(self, now: float) -> None:
        """Reserve the next arrival's heap key without scheduling it."""
        index = self._cursor
        if index < self._count:
            sim = self.sim
            self.next_time = self._times[index]
            self.next_seq = sim._seq
            sim._seq += 1
        else:
            self.next_time = None

    def pull_col(self, now: float) -> tuple:
        """Columnar pull: ``pull() + advance(now)`` without the Packet.

        Returns ``(packet_id, class_id, size)`` for the pending arrival
        and reserves the next one's heap key, mirroring the scalar
        methods' exact sequence-number consumption (see
        :meth:`~repro.traffic.source.TrafficSource.pull_col` for the
        idle-link ordering contract the drain loops uphold).
        """
        index = self._cursor
        pid = self.first_packet_id + index
        cid = self._class_ids[index]
        size = self._sizes[index]
        self._cursor = index = index + 1
        if index < self._count:
            sim = self.sim
            self.next_time = self._times[index]
            self.next_seq = sim._seq
            sim._seq += 1
        else:
            self.next_time = None
        return pid, cid, size

    def park(self, heap: list) -> None:
        """Push the virtually-held arrival back onto the calendar."""
        if self._virtual:
            self._virtual = False
            if self.next_time is not None:
                heapq.heappush(
                    heap, (self.next_time, self.next_seq, self._emit, None)
                )
