"""Poisson (exponential-gap) interarrival process.

Not used in the paper's headline figures, but essential here: with
Poisson arrivals the M/G/1 and Kleinrock time-dependent-priority
formulas in :mod:`repro.theory` apply, giving closed-form cross-checks
for the simulator and the WTP scheduler.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .base import InterarrivalProcess

__all__ = ["PoissonInterarrivals"]


class PoissonInterarrivals(InterarrivalProcess):
    """Exponentially distributed gaps with the given mean."""

    def __init__(
        self, mean_gap: float, rng: np.random.Generator | None = None
    ) -> None:
        if mean_gap <= 0:
            raise ConfigurationError(f"mean_gap must be positive: {mean_gap}")
        self._mean = float(mean_gap)
        self._rng = rng if rng is not None else np.random.default_rng()

    def next_gap(self) -> float:
        return self._rng.exponential(self._mean)

    def draw_gaps(self, n: int) -> np.ndarray:
        # numpy fills exponential blocks with the same ziggurat draws,
        # in the same order, as n scalar calls: bit-identical.
        return self._rng.exponential(self._mean, size=n)

    @property
    def mean(self) -> float:
        return self._mean
