"""Packet-size distributions.

The paper's single-link study uses a trimodal Internet-like mix: 40% of
packets are 40 bytes, 50% are 550 bytes and 10% are 1500 bytes (mean
441 B).  The multi-hop study uses fixed 500-byte packets.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from .base import PacketSizeSampler

__all__ = ["FixedPacketSize", "DiscretePacketSizes", "paper_trimodal_sizes"]


class FixedPacketSize(PacketSizeSampler):
    """Every packet has the same size."""

    def __init__(self, size: float) -> None:
        if size <= 0:
            raise ConfigurationError(f"packet size must be positive: {size}")
        self.size = float(size)

    def next_size(self) -> float:
        return self.size

    def draw_sizes(self, n: int) -> np.ndarray:
        return np.full(n, self.size, dtype=np.float64)

    @property
    def mean(self) -> float:
        return self.size


class DiscretePacketSizes(PacketSizeSampler):
    """Sizes drawn from a finite distribution {size: probability}."""

    def __init__(
        self,
        sizes: Sequence[float],
        probabilities: Sequence[float],
        rng: np.random.Generator | None = None,
    ) -> None:
        if len(sizes) != len(probabilities) or not sizes:
            raise ConfigurationError("sizes and probabilities must align")
        if any(s <= 0 for s in sizes):
            raise ConfigurationError(f"sizes must be positive: {sizes}")
        if any(p < 0 for p in probabilities):
            raise ConfigurationError("probabilities must be non-negative")
        total = float(sum(probabilities))
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(f"probabilities must sum to 1: {total}")
        self.sizes = np.asarray(sizes, dtype=float)
        self.probabilities = np.asarray(probabilities, dtype=float) / total
        self._cum = np.cumsum(self.probabilities)
        self._rng = rng if rng is not None else np.random.default_rng()
        self._mean = float(np.dot(self.sizes, self.probabilities))

    def next_size(self) -> float:
        u = self._rng.random()
        index = int(np.searchsorted(self._cum, u, side="right"))
        if index >= len(self.sizes):  # guard for u == 1.0 edge
            index = len(self.sizes) - 1
        return float(self.sizes[index])

    def draw_sizes(self, n: int) -> np.ndarray:
        # One uniform block plus one vectorized searchsorted: the same
        # uniforms, bucket edges and clamp as n scalar draws.
        u = self._rng.random(n)
        indices = np.searchsorted(self._cum, u, side="right")
        np.minimum(indices, len(self.sizes) - 1, out=indices)
        return self.sizes[indices]

    @property
    def mean(self) -> float:
        return self._mean


def paper_trimodal_sizes(
    rng: np.random.Generator | None = None,
) -> DiscretePacketSizes:
    """The paper's mix: 40 B (40%), 550 B (50%), 1500 B (10%)."""
    return DiscretePacketSizes([40.0, 550.0, 1500.0], [0.4, 0.5, 0.1], rng=rng)
