"""Trace persistence.

Arrival traces are the unit of reproducibility in this library (same
trace -> same experiment, any scheduler).  These helpers store traces
as compressed ``.npz`` (exact, fast) or as CSV (interoperable with
tcpdump-style post-processing pipelines: one line per packet with
``time,class,size``).
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..errors import ConfigurationError
from .trace import ArrivalTrace

__all__ = ["save_trace", "load_trace", "save_trace_csv", "load_trace_csv"]


def save_trace(trace: ArrivalTrace, path: str | Path) -> Path:
    """Write a trace as compressed npz; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        times=trace.times,
        class_ids=trace.class_ids,
        sizes=trace.sizes,
    )
    # numpy appends .npz when missing; normalize the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz"
    )


def load_trace(path: str | Path) -> ArrivalTrace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(Path(path)) as data:
        try:
            return ArrivalTrace(
                times=data["times"].astype(float),
                class_ids=data["class_ids"].astype(np.int64),
                sizes=data["sizes"].astype(float),
            )
        except KeyError as exc:
            raise ConfigurationError(
                f"{path} is not a trace archive (missing {exc})"
            ) from None


def save_trace_csv(trace: ArrivalTrace, path: str | Path) -> Path:
    """Write ``time,class,size`` lines (class is 1-based, as in the paper)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(("time", "class", "size"))
        for time, cid, size in zip(trace.times, trace.class_ids, trace.sizes):
            writer.writerow((repr(float(time)), int(cid) + 1, repr(float(size))))
    return path


def load_trace_csv(path: str | Path) -> ArrivalTrace:
    """Read a CSV trace written by :func:`save_trace_csv` (or any file
    with a ``time,class,size`` header and 1-based classes)."""
    times, class_ids, sizes = [], [], []
    with Path(path).open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or [h.strip() for h in header[:3]] != [
            "time", "class", "size",
        ]:
            raise ConfigurationError(
                f"{path}: expected a 'time,class,size' header"
            )
        for row in reader:
            if not row:
                continue
            times.append(float(row[0]))
            class_ids.append(int(row[1]) - 1)
            sizes.append(float(row[2]))
    if any(cid < 0 for cid in class_ids):
        raise ConfigurationError(f"{path}: classes must be 1-based")
    return ArrivalTrace(
        np.asarray(times), np.asarray(class_ids, dtype=np.int64),
        np.asarray(sizes),
    )
