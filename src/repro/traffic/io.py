"""Trace persistence and zero-copy inter-process trace exchange.

Arrival traces are the unit of reproducibility in this library (same
trace -> same experiment, any scheduler).  These helpers store traces
as compressed ``.npz`` (exact, fast) or as CSV (interoperable with
tcpdump-style post-processing pipelines: one line per packet with
``time,class,size``).

The second half of the module is the sharded sweep tier's **shared-
memory handle protocol**: a coordinator packs a trace's three arrays
into one ``multiprocessing.shared_memory`` block (:func:`share_trace`)
and ships workers only a :class:`SharedTraceHandle` -- name, length,
layout -- a few hundred bytes regardless of trace size.  Workers
:func:`attach_trace` and get numpy views straight into the block: no
pickling, no copy, one mapping per process.  When shared memory is
unavailable (``/dev/shm`` unmounted, exotic platforms), the same call
sites degrade to an :class:`InlineTraceHandle` that simply carries the
arrays and crosses process boundaries by pickle -- the pre-shard
behavior, bit-identical results, just slower.

Layout inside a block: ``float64 times | int64 class_ids | float64
sizes``, each ``count * 8`` bytes, in that order.  The handle stores
only ``count`` -- dtypes and order are part of the protocol version
(``SHM_PROTOCOL``), checked at attach time so a coordinator and worker
from different code versions never silently misread a block.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import ConfigurationError
from .trace import ArrivalTrace

__all__ = [
    "save_trace",
    "load_trace",
    "save_trace_csv",
    "load_trace_csv",
    "SHM_PROTOCOL",
    "SharedTraceHandle",
    "InlineTraceHandle",
    "shm_available",
    "share_trace",
    "attach_trace",
    "publish_trace",
]


def save_trace(trace: ArrivalTrace, path: str | Path) -> Path:
    """Write a trace as compressed npz; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        times=trace.times,
        class_ids=trace.class_ids,
        sizes=trace.sizes,
    )
    # numpy appends .npz when missing; normalize the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz"
    )


def load_trace(path: str | Path) -> ArrivalTrace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(Path(path)) as data:
        try:
            return ArrivalTrace(
                times=data["times"].astype(float),
                class_ids=data["class_ids"].astype(np.int64),
                sizes=data["sizes"].astype(float),
            )
        except KeyError as exc:
            raise ConfigurationError(
                f"{path} is not a trace archive (missing {exc})"
            ) from None


def save_trace_csv(trace: ArrivalTrace, path: str | Path) -> Path:
    """Write ``time,class,size`` lines (class is 1-based, as in the paper)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(("time", "class", "size"))
        for time, cid, size in zip(trace.times, trace.class_ids, trace.sizes):
            writer.writerow((repr(float(time)), int(cid) + 1, repr(float(size))))
    return path


def load_trace_csv(path: str | Path) -> ArrivalTrace:
    """Read a CSV trace written by :func:`save_trace_csv` (or any file
    with a ``time,class,size`` header and 1-based classes)."""
    times, class_ids, sizes = [], [], []
    with Path(path).open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or [h.strip() for h in header[:3]] != [
            "time", "class", "size",
        ]:
            raise ConfigurationError(
                f"{path}: expected a 'time,class,size' header"
            )
        for row in reader:
            if not row:
                continue
            times.append(float(row[0]))
            class_ids.append(int(row[1]) - 1)
            sizes.append(float(row[2]))
    if any(cid < 0 for cid in class_ids):
        raise ConfigurationError(f"{path}: classes must be 1-based")
    return ArrivalTrace(
        np.asarray(times), np.asarray(class_ids, dtype=np.int64),
        np.asarray(sizes),
    )


# ----------------------------------------------------------------------
# Shared-memory trace exchange (the sharded sweep tier's handle protocol)
# ----------------------------------------------------------------------
#: Bump on any change to the block layout below.
SHM_PROTOCOL = 1


@dataclass(frozen=True)
class SharedTraceHandle:
    """Picklable pointer to a trace living in a shared-memory block."""

    shm_name: str
    count: int
    protocol: int = SHM_PROTOCOL


@dataclass(frozen=True)
class InlineTraceHandle:
    """Fallback handle that carries the arrays themselves (pickled)."""

    times: np.ndarray = field(repr=False)
    class_ids: np.ndarray = field(repr=False)
    sizes: np.ndarray = field(repr=False)


def shm_available() -> bool:
    """Can this host create POSIX shared-memory blocks right now?

    Probes once per process with a tiny block; a failure (missing
    ``/dev/shm``, seccomp, permission) flips every publish to the
    inline fallback.
    """
    global _SHM_PROBED
    if _SHM_PROBED is None:
        try:
            from multiprocessing import shared_memory

            block = shared_memory.SharedMemory(create=True, size=16)
            block.close()
            block.unlink()
            _SHM_PROBED = True
        except Exception:
            _SHM_PROBED = False
    return _SHM_PROBED


_SHM_PROBED: bool | None = None


class _untracked_attach:
    """Suppress resource-tracker registration while attaching a block.

    The coordinator owns every block's lifetime (it unlinks them when
    the sweep finishes); attaching workers must not ALSO register the
    name.  Under the fork start method all workers share the
    coordinator's tracker process, so a worker-side register+unregister
    pair would *remove* the coordinator's own registration and the
    final unlink would hit the tracker's KeyError path.  Muting
    ``register`` for the attach call (workers are single-threaded, so
    the window is private) sidesteps both; Python 3.13's
    ``track=False`` makes this shim obsolete.
    """

    def __enter__(self):
        from multiprocessing import resource_tracker

        self._module = resource_tracker
        self._register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        return self

    def __exit__(self, *exc):
        self._module.register = self._register


def share_trace(trace: ArrivalTrace):
    """Copy a trace into a fresh shm block; ``(handle, block)``.

    The caller (coordinator) keeps ``block`` alive for the sweep's
    duration and must ``block.close(); block.unlink()`` afterwards --
    :class:`repro.runner.shard.ShardRunner` does this in its cleanup.
    """
    from multiprocessing import shared_memory

    count = len(trace)
    block = shared_memory.SharedMemory(create=True, size=max(1, count * 24))
    row = count * 8
    np.ndarray(count, np.float64, block.buf, 0)[:] = trace.times
    np.ndarray(count, np.int64, block.buf, row)[:] = trace.class_ids
    np.ndarray(count, np.float64, block.buf, 2 * row)[:] = trace.sizes
    return SharedTraceHandle(shm_name=block.name, count=count), block


def attach_trace(handle):
    """Resolve a handle into ``(trace, block_or_None)``.

    For a :class:`SharedTraceHandle` the returned trace's arrays are
    zero-copy views into the block -- the caller must keep the returned
    block referenced for as long as the trace is used (the shard
    worker's per-process registry does).  Inline handles return their
    arrays directly with ``None``.
    """
    if isinstance(handle, InlineTraceHandle):
        return (
            ArrivalTrace(handle.times, handle.class_ids, handle.sizes),
            None,
        )
    if handle.protocol != SHM_PROTOCOL:
        raise ConfigurationError(
            f"shared-trace protocol mismatch: block speaks "
            f"v{handle.protocol}, this code v{SHM_PROTOCOL}"
        )
    from multiprocessing import shared_memory

    with _untracked_attach():
        block = shared_memory.SharedMemory(name=handle.shm_name)
    count = handle.count
    row = count * 8
    trace = ArrivalTrace(
        times=np.ndarray(count, np.float64, block.buf, 0),
        class_ids=np.ndarray(count, np.int64, block.buf, row),
        sizes=np.ndarray(count, np.float64, block.buf, 2 * row),
    )
    return trace, block


def publish_trace(trace: ArrivalTrace, use_shm: bool = True):
    """Best handle available: shm when possible, inline otherwise.

    Returns ``(handle, block_or_None)``; npz artifacts publish by
    loading first (``publish_trace(load_trace(path))``), which is the
    "decompress once in the coordinator, map everywhere" path.
    """
    if use_shm and shm_available():
        return share_trace(trace)
    return (
        InlineTraceHandle(
            times=trace.times, class_ids=trace.class_ids, sizes=trace.sizes
        ),
        None,
    )
