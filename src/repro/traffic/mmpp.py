"""Two-state Markov-Modulated Poisson Process (extension workload).

A Poisson process whose rate switches between ``rate_a`` and ``rate_b``
after exponentially distributed sojourns -- a standard model for traffic
with slowly varying intensity, used in the ablation study to probe
scheduler robustness to load that drifts on long timescales.

Mean gap: the stationary probability of state a is
pi_a = mean_a / (mean_a + mean_b) (sojourn means), so the long-run
packet rate is pi_a * rate_a + pi_b * rate_b and the mean gap is its
reciprocal.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..sim.rng import BufferedExponentials
from .base import InterarrivalProcess

__all__ = ["MMPPInterarrivals"]


class MMPPInterarrivals(InterarrivalProcess):
    """2-state MMPP with exponential sojourns and per-state Poisson rates."""

    def __init__(
        self,
        rate_a: float,
        rate_b: float,
        mean_sojourn_a: float,
        mean_sojourn_b: float,
        rng: np.random.Generator | None = None,
    ) -> None:
        if rate_a <= 0 or rate_b <= 0:
            raise ConfigurationError("both state rates must be positive")
        if mean_sojourn_a <= 0 or mean_sojourn_b <= 0:
            raise ConfigurationError("both mean sojourns must be positive")
        self.rates = (float(rate_a), float(rate_b))
        self.sojourns = (float(mean_sojourn_a), float(mean_sojourn_b))
        self._rng = rng if rng is not None else np.random.default_rng()
        # All draws (candidates and sojourns) go through one prefetch
        # buffer so block and scalar drawing stay interchangeable.
        self._exp = BufferedExponentials(self._rng)
        self._state = 0
        self._state_time_left = self._exp.draw(self.sojourns[0])

    def next_gap(self) -> float:
        gap = 0.0
        while True:
            candidate = self._exp.draw(1.0 / self.rates[self._state])
            if candidate <= self._state_time_left:
                self._state_time_left -= candidate
                return gap + candidate
            # No arrival before the state flips: consume the remaining
            # sojourn and redraw in the next state (memorylessness makes
            # this exact).
            gap += self._state_time_left
            self._state = 1 - self._state
            self._state_time_left = self._exp.draw(
                self.sojourns[self._state]
            )

    def draw_gaps(self, n: int) -> np.ndarray:
        # Full vectorization is impossible without changing the stream:
        # how many candidates fit in a sojourn is only known after
        # drawing them.  Instead the state machine runs with hoisted
        # lookups over prefetched draws, which removes the per-arrival
        # Generator dispatch the scalar path pays.
        out = np.empty(n, dtype=np.float64)
        scales = (1.0 / self.rates[0], 1.0 / self.rates[1])
        sojourns = self.sojourns
        draw = self._exp.draw
        state = self._state
        left = self._state_time_left
        for i in range(n):
            gap = 0.0
            while True:
                candidate = draw(scales[state])
                if candidate <= left:
                    left -= candidate
                    out[i] = gap + candidate
                    break
                gap += left
                state = 1 - state
                left = draw(sojourns[state])
        self._state = state
        self._state_time_left = left
        return out

    @property
    def mean(self) -> float:
        pi_a = self.sojourns[0] / (self.sojourns[0] + self.sojourns[1])
        long_run_rate = pi_a * self.rates[0] + (1.0 - pi_a) * self.rates[1]
        return 1.0 / long_run_rate
