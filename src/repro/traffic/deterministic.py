"""Deterministic (CBR / periodic) interarrival process.

The multi-hop study's user flows are periodic: F packets of 500 bytes
sent back-to-back at a fixed period.  A constant-gap process also makes
scheduler unit tests exactly predictable.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .base import InterarrivalProcess

__all__ = ["ConstantInterarrivals"]


class ConstantInterarrivals(InterarrivalProcess):
    """Every gap equals ``gap`` exactly."""

    def __init__(self, gap: float) -> None:
        if gap <= 0:
            raise ConfigurationError(f"gap must be positive: {gap}")
        self.gap = float(gap)

    def next_gap(self) -> float:
        return self.gap

    def draw_gaps(self, n: int) -> np.ndarray:
        return np.full(n, self.gap, dtype=np.float64)

    @property
    def mean(self) -> float:
        return self.gap
