"""On-off bursty interarrival process (extension workload).

Alternates exponentially distributed ON periods, during which packets
arrive at a constant peak gap, with exponentially distributed OFF
periods with no arrivals.  The classic model for bursty sources with a
*peak rate* -- useful for exercising Proposition 2 (WTP short-term
starvation needs a bounded peak input rate R1) and for ablations on
burstier-than-Pareto inputs.

Mean gap: each ON period emits on average ``mean_on / peak_gap``
packets; a full on+off cycle lasts ``mean_on + mean_off``, so

    mean = (mean_on + mean_off) * peak_gap / mean_on.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..sim.rng import BufferedExponentials
from .base import InterarrivalProcess

__all__ = ["OnOffInterarrivals"]


class OnOffInterarrivals(InterarrivalProcess):
    """Exponential ON/OFF periods; constant peak-rate gaps while ON."""

    def __init__(
        self,
        peak_gap: float,
        mean_on: float,
        mean_off: float,
        rng: np.random.Generator | None = None,
    ) -> None:
        if peak_gap <= 0:
            raise ConfigurationError(f"peak_gap must be positive: {peak_gap}")
        if mean_on <= 0 or mean_off < 0:
            raise ConfigurationError(
                f"mean_on must be > 0 and mean_off >= 0: {mean_on}, {mean_off}"
            )
        self.peak_gap = float(peak_gap)
        self.mean_on = float(mean_on)
        self.mean_off = float(mean_off)
        self._rng = rng if rng is not None else np.random.default_rng()
        # All period draws go through one prefetch buffer so block and
        # scalar drawing stay interchangeable mid-stream.
        self._exp = BufferedExponentials(self._rng)
        self._remaining_on = self._exp.draw(self.mean_on)

    def next_gap(self) -> float:
        gap = self.peak_gap
        self._remaining_on -= self.peak_gap
        while self._remaining_on <= 0:
            # Burst ended: insert an OFF period, then start a new burst.
            if self.mean_off > 0:
                gap += self._exp.draw(self.mean_off)
            self._remaining_on += self._exp.draw(self.mean_on)
        return gap

    def draw_gaps(self, n: int) -> np.ndarray:
        # Same recurrence as next_gap with the loop-invariant lookups
        # hoisted.  The ``_remaining_on`` countdown must stay a
        # sequential scalar subtraction: its accumulated rounding
        # decides exactly which packet ends a burst, so any closed-form
        # (vectorized) version could shift a burst boundary by one.
        out = np.empty(n, dtype=np.float64)
        peak_gap = self.peak_gap
        mean_on = self.mean_on
        mean_off = self.mean_off
        draw = self._exp.draw
        remaining = self._remaining_on
        for i in range(n):
            gap = peak_gap
            remaining -= peak_gap
            while remaining <= 0:
                if mean_off > 0:
                    gap += draw(mean_off)
                remaining += draw(mean_on)
            out[i] = gap
        self._remaining_on = remaining
        return out

    @property
    def mean(self) -> float:
        return (self.mean_on + self.mean_off) * self.peak_gap / self.mean_on

    @property
    def peak_rate(self) -> float:
        """Peak packet rate 1/peak_gap (Proposition 2's R1, in packets)."""
        return 1.0 / self.peak_gap
