#!/usr/bin/env python3
"""Declarative sweeps: drive the library from a JSON spec.

Writes a small spec file (the kind an operator would keep in version
control), runs it with :func:`repro.experiments.run_spec_file`, and
prints the structured results.  The sweep compares three schedulers at
two loads without a line of orchestration code.

Run:  python examples/spec_sweep.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.experiments import run_spec_file

SPEC = {
    "name": "scheduler-sweep",
    "runs": [
        {
            "kind": "single-hop",
            "label": f"{scheduler}@{rho}",
            "scheduler": scheduler,
            "utilization": rho,
            "horizon": 1.5e5,
            "warmup": 7.5e3,
            "seed": 11,
        }
        for scheduler in ("wtp", "pad", "bpr")
        for rho in (0.8, 0.95)
    ],
}


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        spec_path = Path(tmp) / "sweep.json"
        out_path = Path(tmp) / "results.json"
        spec_path.write_text(json.dumps(SPEC, indent=2))
        print(f"Running spec '{SPEC['name']}' "
              f"({len(SPEC['runs'])} runs)...\n")
        outcome = run_spec_file(spec_path, out_path)

        print(f"{'label':>10} {'ratios (target 2.0)':>26} {'Eq5 resid':>10}")
        for result in outcome["results"]:
            ratios = ", ".join(
                f"{r:.2f}" for r in result["successive_ratios"]
            )
            print(f"{result['label']:>10} {ratios:>26} "
                  f"{result['conservation_residual']:>+9.2%}")

        print(f"\nStructured results were also written to {out_path.name}")
        print("(kind, delays, ratios, residuals -- ready for your own")
        print("analysis pipeline).  Edit the spec; no code changes needed.")


if __name__ == "__main__":
    main()
