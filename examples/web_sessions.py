#!/usr/bin/env python3
"""Short flows and short timescales: does paying for a class help?

Section 2's motivating scenario: a user sends a *short* flow (a Web
session) in a higher class, expecting lower delays than a lower class
-- not just on long-term average, but over the seconds the session
actually lasts.  This example measures, for WTP and BPR on identical
arrivals, how often a monitoring interval of length tau actually
delivers the promised ordering, and how tight the proportional ratio
R_D is around its target (the Figure 3 question).

Run:  python examples/web_sessions.py
"""

from __future__ import annotations

import numpy as np

from repro.core.metrics import rd_series, summarize_rd
from repro.experiments import SingleHopConfig, generate_trace, replay_through_scheduler
from repro.schedulers import make_scheduler
from repro.units import PAPER_P_UNIT


def main() -> None:
    taus_p = (10.0, 100.0, 1000.0)
    taus = tuple(t * PAPER_P_UNIT for t in taus_p)
    config = SingleHopConfig(
        utilization=0.95,
        horizon=5e5,
        warmup=2e4,
        seed=21,
        interval_taus=taus,
    )
    trace = generate_trace(config)
    print("One trace, two schedulers, three monitoring timescales.")
    print("R_D is the interval-average ratio of successive-class delays;")
    print("the target here is 2.0.  'ordered' counts intervals where the")
    print("ratio exceeded 1 (higher class actually better).\n")

    header = (f"{'sched':>6} {'tau(p)':>8} {'median':>8} {'IQR':>8} "
              f"{'p5':>7} {'p95':>7} {'ordered':>8}")
    print(header)
    for name in ("wtp", "bpr"):
        result = replay_through_scheduler(
            trace, make_scheduler(name, config.sdps), config
        )
        for tau_p, tau in zip(taus_p, taus):
            means = result.interval_monitors[tau].interval_means()
            summary = summarize_rd(means)
            series = rd_series(means)
            ordered = float(np.mean([r > 1.0 for r in series]))
            print(
                f"{name:>6} {tau_p:>8g} {summary.median:>8.2f} "
                f"{summary.p75 - summary.p25:>8.2f} {summary.p5:>7.2f} "
                f"{summary.p95:>7.2f} {ordered:>7.0%}"
            )

    print("\nReading: with tau = 1000 p-units (~3 s on a T1, ~30 ms on an")
    print("OC-3) both schedulers keep the classes ordered in nearly every")
    print("interval, but WTP's R_D distribution is much tighter at small")
    print("tau -- a short Web session in a higher class gets what it paid")
    print("for, even over its own short lifetime.")


if __name__ == "__main__":
    main()
