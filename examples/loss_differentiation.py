#!/usr/bin/env python3
"""Extension: proportional *loss* differentiation on a lossy link.

The paper confines itself to delay and names coupled delay-and-loss
differentiation as future work.  This example runs that direction: a
bounded-buffer link, overloaded past capacity, where a PLR dropper
chooses loss victims so that class loss fractions stay proportional to
the Loss Differentiation Parameters sigma_i -- while a WTP scheduler
keeps delays proportional at the same time.

Run:  python examples/loss_differentiation.py
"""

from __future__ import annotations

from repro.dropping import PLRDropper
from repro.schedulers import WTPScheduler
from repro.sim import DelayMonitor, Link, PacketSink, Simulator
from repro.sim.rng import RandomStreams
from repro.traffic import (
    PacketIdAllocator,
    ParetoInterarrivals,
    TrafficSource,
    paper_trimodal_sizes,
)
from repro.units import PAPER_LINK_CAPACITY


def run(window: int | None, horizon: float = 3e5, seed: int = 42):
    sim = Simulator()
    streams = RandomStreams(seed)
    ldps = (4.0, 2.0, 1.0)           # class 1 loses 4x class 3
    sdps = (1.0, 2.0, 4.0)           # and also waits 4x longer
    dropper = PLRDropper(ldps, window=window)
    link = Link(
        sim,
        WTPScheduler(sdps),
        PAPER_LINK_CAPACITY,
        buffer_packets=100,
        drop_policy=dropper,
        target=PacketSink(),
    )
    monitor = DelayMonitor(3, warmup=horizon * 0.05)
    link.add_monitor(monitor)
    ids = PacketIdAllocator()
    sizes_mean = paper_trimodal_sizes().mean
    # Offered load 130% of capacity, equal class shares.
    per_class_rate = 1.3 * PAPER_LINK_CAPACITY / sizes_mean / 3.0
    for class_id in range(3):
        TrafficSource(
            sim, link, class_id,
            ParetoInterarrivals(1.0 / per_class_rate, rng=streams.generator()),
            paper_trimodal_sizes(streams.generator()),
            ids=ids,
        ).start()
    sim.run(until=horizon)
    return link, dropper, monitor, ldps


def main() -> None:
    for window, label in ((None, "PLR(inf): whole-run loss history"),
                          (2000, "PLR(M=2000): sliding-window history")):
        link, dropper, monitor, ldps = run(window)
        print(label)
        print(f"  offered load 130%, drops {link.drops} of {link.arrivals} "
              f"arrivals ({link.drops / link.arrivals:.1%})")
        print(f"  {'class':>6} {'loss%':>7} {'norm (l/sigma)':>15} "
              f"{'mean delay':>11}")
        for cid in range(3):
            fraction = dropper.drops[cid] / max(dropper.arrivals[cid], 1)
            print(f"  {cid + 1:>6} {fraction:>7.2%} "
                  f"{fraction / ldps[cid]:>15.4f} "
                  f"{monitor.mean_delay(cid):>11.1f}")
        ratios = dropper.loss_ratios()
        print(f"  measured loss ratios l1/l2, l2/l3: "
              f"{ratios[0]:.2f}, {ratios[1]:.2f}  (targets "
              f"{ldps[0] / ldps[1]:.0f}, {ldps[1] / ldps[2]:.0f})\n")

    print("Reading: normalized loss fractions equalize across classes --")
    print("the proportional model, applied to the loss metric -- while")
    print("WTP keeps the surviving packets' delays differentiated too.")


if __name__ == "__main__":
    main()
