#!/usr/bin/env python3
"""Quickstart: proportional delay differentiation on one link.

Four traffic classes share a congested link.  The network operator
wants each class's average queueing delay to be *half* that of the
class below it, whatever the load -- the proportional differentiation
model with DDP ratios delta_i / delta_{i+1} = 2.  We configure a WTP
scheduler with the inverse SDPs (1, 2, 4, 8), run the paper's bursty
Pareto workload at 95% utilization, and check the measured ratios,
the conservation law (Eq 5), and feasibility (Eq 7).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import SingleHopConfig, run_single_hop
from repro.units import PAPER_P_UNIT


def main() -> None:
    config = SingleHopConfig(
        scheduler="wtp",
        sdps=(1.0, 2.0, 4.0, 8.0),   # class 4 ages 8x faster: lowest delay
        utilization=0.95,
        horizon=4e5,                 # simulation length (time units)
        warmup=2e4,
        seed=7,
    )
    print("Simulating:", config.scheduler.upper(), "at rho =",
          config.utilization, "...")
    result = run_single_hop(config)

    print("\nPer-class average queueing delays (in p-units, i.e. average")
    print("packet transmission times):")
    for class_id, delay in enumerate(result.mean_delays, start=1):
        print(f"  class {class_id}: {delay / PAPER_P_UNIT:8.1f} p-units")

    print("\nMeasured vs target delay ratios d_i / d_{i+1}:")
    for i, (measured, target) in enumerate(
        zip(result.successive_ratios, result.target_ratios()), start=1
    ):
        print(f"  d{i}/d{i + 1}: measured {measured:.2f}   target {target:.1f}")

    residual = result.conservation_residual()
    print(f"\nConservation law (Eq 5) relative residual: {residual:+.3%}")
    print("  (any work-conserving scheduler must satisfy this; it checks")
    print("   the simulator, not the scheduler)")

    report = result.feasibility_report()
    print(f"\nFeasibility of the DDP target at this load (Eq 7): "
          f"{'FEASIBLE' if report.feasible else 'INFEASIBLE'}")
    print(f"  worst subset margin: {report.worst_margin():.1f} "
          f"(>= 0 means no subset is pushed below its FCFS floor)")

    print("\nInterpretation: in heavy load WTP realizes the proportional")
    print("model d_i/d_j = s_j/s_i (paper Eq 13).  Try utilization=0.7 to")
    print("see the documented moderate-load undershoot, or scheduler='bpr'")
    print("to compare the paper's second scheduler.")


if __name__ == "__main__":
    main()
