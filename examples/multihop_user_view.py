#!/usr/bin/env python3
"""The user's perspective across a multi-hop path (Section 6).

Per-hop, class-based differentiation is what the network implements;
what a *user* cares about is end-to-end, per-flow differentiation.
This example rebuilds the paper's Figure 6 configuration -- a chain of
25 Mbps WTP hops, each loaded with fresh Pareto cross-traffic -- and
launches "user experiments": four identical flows, one per class,
entering together.  For each experiment it compares the flows' delay
percentiles across classes and reports the end-to-end metric R_D
(ideal 2.0) and any inconsistent differentiation.

Run:  python examples/multihop_user_view.py
"""

from __future__ import annotations

import numpy as np

from repro import MultiHopConfig, run_multihop


def main() -> None:
    for hops in (2, 4):
        config = MultiHopConfig(
            hops=hops,
            utilization=0.90,
            flow_packets=20,
            flow_rate_kbps=200.0,
            experiments=15,
            warmup=10_000.0,      # ms
            experiment_period=800.0,
            drain=5_000.0,
            seed=13,
        )
        print(f"Path of {hops} congested hops at rho = "
              f"{config.utilization:.0%} "
              f"(flows: {config.flow_packets} packets at "
              f"{config.flow_rate_kbps:g} kbps)")
        result = run_multihop(config)

        rds = [c.rd for c in result.comparisons]
        print(f"  user experiments completed : {len(result.comparisons)}")
        print(f"  end-to-end R_D             : {result.rd:.2f} "
              f"(ideal 2.00; spread {np.std(rds):.2f})")
        print(f"  inconsistent experiments   : "
              f"{result.inconsistent_experiments}")

        # Show one experiment's percentile matrix, converted to ms.
        matrix = result.comparisons[0].percentile_matrix
        print("  one experiment's end-to-end delay percentiles (ms):")
        print(f"    {'class':>6} {'p10':>8} {'p50':>8} {'p90':>8} {'p99':>8}")
        for cid in range(matrix.shape[0]):
            p10, p50, p90, p99 = matrix[cid, 0], matrix[cid, 4], matrix[cid, 8], matrix[cid, 9]
            print(f"    {cid + 1:>6} {p10:>8.2f} {p50:>8.2f} {p90:>8.2f} "
                  f"{p99:>8.2f}")
        print()

    print("Reading: higher classes see lower delays at *every* percentile")
    print("(consistent differentiation), and R_D sits near the per-hop")
    print("target -- per-hop deviations tend to cancel along the path,")
    print("which is why the paper found K=8 closer to ideal than K=4.")


if __name__ == "__main__":
    main()
