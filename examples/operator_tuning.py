#!/usr/bin/env python3
"""Operator's view: choosing the quality spacing between classes.

The proportional model's selling point (Section 1) is that the operator
gets *tuning knobs*: the DDPs set the quality spacing, independent of
class loads.  This example plays the operator:

1. Pick a candidate DDP spacing.
2. Check it is *feasible* at the link's measured traffic (Eq 7) --
   the paper stresses that even an ideal scheduler cannot realize an
   infeasible spacing.
3. Predict the resulting class delays from the model dynamics (Eq 6).
4. Deploy WTP with the inverse SDPs and compare prediction vs measured.
5. Show what happens when the load shifts: ratios hold, absolute
   delays move (the model's defining behaviour).

Run:  python examples/operator_tuning.py
"""

from __future__ import annotations

from repro import (
    ProportionalDelayModel,
    SingleHopConfig,
    ddps_from_sdps,
    run_single_hop,
)
from repro.traffic import ClassLoadDistribution
from repro.units import PAPER_P_UNIT


def run_point(sdps, loads, utilization, seed=11):
    config = SingleHopConfig(
        scheduler="wtp",
        sdps=sdps,
        loads=loads,
        utilization=utilization,
        horizon=4e5,
        warmup=2e4,
        seed=seed,
    )
    return run_single_hop(config)


def main() -> None:
    sdps = (1.0, 2.0, 4.0, 8.0)
    ddps = ddps_from_sdps(sdps)
    print("Operator target: successive delay ratios",
          [f"{r:g}" for r in ddps.successive_ratios()])

    loads = ClassLoadDistribution((0.4, 0.3, 0.2, 0.1))
    result = run_point(sdps, loads, utilization=0.95)

    # Step 1: feasibility audit at the measured traffic.
    report = result.feasibility_report()
    print(f"\nFeasibility at rho=0.95, loads {loads.label()}: "
          f"{'OK' if report.feasible else 'VIOLATED'} "
          f"(worst margin {report.worst_margin():.1f})")

    # Step 2: model prediction (Eq 6) vs measurement.
    rates = result.trace.class_rates(result.config.horizon)
    model = ProportionalDelayModel(ddps)
    predicted = model.class_delays(rates, result.fcfs_aggregate_delay())
    print("\nEq 6 prediction vs WTP measurement (p-units):")
    print(f"  {'class':>6} {'predicted':>10} {'measured':>10}")
    for cid, (p, m) in enumerate(zip(predicted, result.mean_delays), start=1):
        print(f"  {cid:>6} {p / PAPER_P_UNIT:>10.1f} {m / PAPER_P_UNIT:>10.1f}")

    # Step 3: shift the load toward the top class and re-measure.  The
    # *ratios* must hold; the absolute delays must move per Eq 6.
    shifted = ClassLoadDistribution((0.1, 0.2, 0.3, 0.4))
    shifted_result = run_point(sdps, shifted, utilization=0.95)
    print(f"\nAfter shifting load to {shifted.label()} "
          "(same aggregate utilization):")
    print(f"  {'pair':>8} {'before':>8} {'after':>8}  (target 2.0)")
    for i, (before, after) in enumerate(
        zip(result.successive_ratios, shifted_result.successive_ratios),
        start=1,
    ):
        print(f"  d{i}/d{i + 1:<3} {before:>8.2f} {after:>8.2f}")
    print("\n  class-4 delay before vs after (p-units): "
          f"{result.mean_delays[3] / PAPER_P_UNIT:.1f} -> "
          f"{shifted_result.mean_delays[3] / PAPER_P_UNIT:.1f}")
    print("  Ratios stay pinned while absolute delays follow the load --")
    print("  Eq 6 property 4: moving load to higher classes raises every")
    print("  class's delay.")


if __name__ == "__main__":
    main()
