#!/usr/bin/env python3
"""Beyond the paper's chain: differentiation on a custom topology.

Builds a Y-shaped network -- two access branches merging into a shared
trunk -- with a different scheduler on each link, and shows that
proportional differentiation composes: flows keep their relative
ordering end-to-end even when their paths only partially overlap and
the trunk is the bottleneck.  Also demonstrates the adaptive-WTP
extension holding the target ratio on a moderately loaded trunk where
plain WTP undershoots.

Topology:

    src_a ──> merge ──┐
                      ├──> trunk ──> sink
    src_b ──> merge ──┘   (bottleneck)

Run:  python examples/custom_topology.py
"""

from __future__ import annotations

import numpy as np

from repro.network import FlowRecorder, RoutedNetwork, UserFlow
from repro.schedulers import make_scheduler
from repro.sim import Simulator
from repro.sim.rng import RandomStreams
from repro.traffic import ParetoInterarrivals
from repro.network.crosstraffic import MixedClassSource


def run(trunk_scheduler: str, utilization: float = 0.92, seed: int = 3):
    sim = Simulator()
    streams = RandomStreams(seed)
    sdps = (1.0, 2.0, 4.0, 8.0)
    capacity = 3125.0  # 25 Mbps in bytes/ms

    net = RoutedNetwork(sim)
    for node in ("src_a", "src_b", "merge", "sink"):
        net.add_node(node)
    # Fast access links (rarely the bottleneck), differentiated trunk.
    net.add_link("src_a", "merge", make_scheduler("wtp", sdps), 2 * capacity)
    net.add_link("src_b", "merge", make_scheduler("wtp", sdps), 2 * capacity)
    net.add_link("merge", "sink", make_scheduler(trunk_scheduler, sdps), capacity)

    # Cross-traffic saturating the trunk to the target utilization.
    cross_rate = utilization * capacity
    for _ in range(6):
        MixedClassSource(
            sim,
            net.edge_link("merge", "sink"),
            ParetoInterarrivals(500.0 * 6 / cross_rate, rng=streams.generator()),
            (0.4, 0.3, 0.2, 0.1),
            500.0,
            streams.generator(),
        ).start()

    # One probe flow per class; classes 1-2 enter via branch A,
    # classes 3-4 via branch B.
    recorders = {}
    for class_id in range(4):
        branch = "src_a" if class_id < 2 else "src_b"
        recorder = FlowRecorder()
        recorders[class_id] = recorder
        net.add_route(class_id, (branch, "merge", "sink"), terminal=recorder)
        UserFlow(
            sim, net.ingress(class_id), flow_id=class_id, class_id=class_id,
            num_packets=2000, packet_size=500.0, period=25.0,
        ).launch(5_000.0)

    sim.run(until=60_000.0)
    means = []
    for class_id in range(4):
        delays = recorders[class_id].flow_delays(class_id)
        means.append(float(np.mean(delays)) if delays else float("nan"))
    return means


def main() -> None:
    print("Y-topology: classes 1-2 via branch A, 3-4 via branch B, all")
    print("merging on a 25 Mbps trunk at 92% load.\n")
    for scheduler in ("wtp", "adaptive-wtp"):
        means = run(scheduler)
        ratios = [means[i] / means[i + 1] for i in range(3)]
        print(f"trunk scheduler = {scheduler}")
        print("  mean end-to-end queueing delay per class (ms): "
              + ", ".join(f"{m:.2f}" for m in means))
        print("  successive ratios (target 2.0): "
              + ", ".join(f"{r:.2f}" for r in ratios))
        print()
    print("Reading: differentiation composes across a partial-overlap")
    print("topology, and the adaptive controller pulls the moderate-load")
    print("ratios toward the target where plain WTP undershoots.")


if __name__ == "__main__":
    main()
