#!/usr/bin/env python3
"""Draw the paper's figures in your terminal.

Regenerates Figure 3 (R_D percentile boxes) and the Figure 4/5
microscopic views at reduced scale and renders them with the built-in
ASCII plotting helpers -- no matplotlib required.  The shapes to look
for: boxes tightening around 2.0 as tau grows (WTP tighter than BPR),
and BPR's noisy per-packet delay cloud vs WTP's banded one.

Run:  python examples/figures_in_terminal.py
"""

from __future__ import annotations

from repro.analysis import box_row, scatter, sparkline
from repro.experiments import (
    FigureThreeConfig,
    MicroscopicConfig,
    run_figure3,
    run_figure45,
)


def draw_figure3() -> None:
    print("=== Figure 3: R_D percentiles per monitoring timescale ===")
    print("(axis 0.5 .. 3.5; target 2.0 marked with ^)\n")
    boxes = run_figure3(FigureThreeConfig(horizon=3e5, warmup=1.5e4))
    axis_low, axis_high, width = 0.5, 3.5, 60
    target_col = int((2.0 - axis_low) / (axis_high - axis_low) * (width - 1))
    for box in boxes:
        s = box.summary
        row = box_row(s.p5, s.p25, s.median, s.p75, s.p95,
                      low=axis_low, high=axis_high, width=width)
        print(f"{box.scheduler:>4} tau={box.tau_p_units:>6g}p  {row}")
    print(" " * 18 + " " * target_col + "^ target 2.0\n")


def draw_figure45() -> None:
    print("=== Figures 4-5: microscopic views (same arrivals) ===\n")
    views = run_figure45(MicroscopicConfig(horizon=1.5e5, warmup=1e4))
    for name in ("bpr", "wtp"):
        view = views[name]
        print(f"--- {name.upper()} ---")
        # View I: interval-average delay per class as sparklines.
        means = view.interval_means
        if len(means):
            global_max = float(max(means[~(means != means)].max(), 1.0)) \
                if means.size else 1.0
            for cid in range(means.shape[1]):
                series = means[:, cid].tolist()
                print(f"  class {cid + 1} interval means "
                      f"{sparkline(series, minimum=0.0, maximum=global_max)}")
        # View II: per-packet delays of the lowest class as a scatter.
        samples = view.packet_samples[0]
        if samples:
            print(f"  class 1 per-packet delays "
                  f"({len(samples)} departures):")
            print("  " + scatter(samples, width=64, height=10).replace(
                "\n", "\n  "))
        print()


def main() -> None:
    draw_figure3()
    draw_figure45()
    print("Reading: WTP's boxes hug the target at every tau; BPR's are")
    print("wide at small tau. In the scatters, BPR shows ramp-and-crash")
    print("(sawtooth) delay patterns; WTP's cloud is banded and smooth.")


if __name__ == "__main__":
    main()
