# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test test-fast bench bench-record bench-sources perf-smoke hybrid-smoke examples selfcheck figures-fast reproduce-quick reproduce-full clean

install:
	$(PYTHON) setup.py develop

# Everything, including tests marked `slow` (overrides the tier-1
# default `-m 'not slow'` from pyproject.toml).
test:
	$(PYTHON) -m pytest tests/ -m ""

# Tier-1 selection: skips tests marked `slow`.
test-fast:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Dump kernel/sweep throughput numbers to BENCH_<date>.json.
bench-record:
	$(PYTHON) benchmarks/record_bench.py

# Scalar-vs-compiled source throughput table (arrivals/sec, events/sec).
bench-sources:
	$(PYTHON) benchmarks/bench_sources.py

# Engine + source microbenchmarks vs the committed BENCH_*.json
# baseline; warns (exit 0) on >20% regression.
perf-smoke:
	$(PYTHON) benchmarks/check_regression.py

# Hybrid fluid/packet engine smoke: pure-vs-hybrid fidelity within the
# epsilon knob and epsilon=0 bit-identity; exits non-zero on either.
hybrid-smoke:
	$(PYTHON) benchmarks/bench_hybrid.py

examples:
	for script in examples/*.py; do echo "== $$script =="; $(PYTHON) $$script; done

selfcheck:
	$(PYTHON) -m repro.cli selfcheck

# All figures at reduced scale, fanned out over every core, cached.
figures-fast:
	$(PYTHON) -m repro.cli all --scale 0.1 --jobs 0 --export-dir results/fast

# Scaled-down end-to-end reproduction (~10 minutes).
reproduce-quick:
	$(PYTHON) -m repro.cli all --scale 0.1 --export-dir results/quick

# Paper-scale reproduction (hours).
reproduce-full:
	$(PYTHON) -m repro.cli all --export-dir results/full

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks results
	find . -name __pycache__ -type d -exec rm -rf {} +
