"""Setup shim.

The offline environment ships setuptools 65.5 without the ``wheel``
package, so pip's PEP 517 editable path (which must build an editable
wheel) fails.  This shim lets ``pip install -e . --no-build-isolation
--no-use-pep517`` (or ``python setup.py develop``) perform the legacy
editable install.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
