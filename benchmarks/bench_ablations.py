"""Ablation benchmarks: the paper's prose claims, quantified.

* SDP-ratio sweep: "deviations increase as we widen the spacing".
* Scheduler shoot-out at 90%: proportional schedulers (WTP/BPR/PAD/HPD)
  versus the Section 2.1 baselines on identical arrivals.
* Additive model: heavy-load differences approach the offsets (Eq 3).
* Proposition 2: an arbitrarily long high-class burst overtakes a
  waiting low-class packet when condition (12) holds.
* PLR droppers: the future-work loss extension holds proportional loss
  ratios on an overloaded, bounded-buffer link.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    adaptive_wtp_correction,
    additive_convergence,
    plr_demo,
    quantization_sweep,
    scheduler_comparison,
    sdp_ratio_sweep,
    wtp_starvation_demo,
)
from repro.experiments.reporting import format_ablation_rows

from _helpers import banner


def test_sdp_ratio_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: sdp_ratio_sweep(horizon=2e5, warmup=1e4),
        rounds=1, iterations=1,
    )
    print(banner("Ablation: accuracy vs SDP spacing (worst rel. error)"))
    print(format_ablation_rows(rows, "sdp_ratio_sweep"))
    # Wider spacing -> larger deviation, for both schedulers.
    for name in ("wtp", "bpr"):
        errors = [row.values[name] for row in rows]
        assert errors[-1] > errors[0]


def test_scheduler_comparison(benchmark):
    rows = benchmark.pedantic(
        lambda: scheduler_comparison(horizon=2e5, warmup=1e4),
        rounds=1, iterations=1,
    )
    print(banner("Ablation: all schedulers on identical arrivals (rho=0.9)"))
    print(format_ablation_rows(rows, "scheduler_comparison"))
    by_label = {row.label: row.values for row in rows}
    # FCFS: no differentiation.
    assert by_label["fcfs"]["r12"] == pytest.approx(1.0, abs=0.35)
    # PAD holds the target ratio where WTP undershoots.
    pad_err = max(abs(by_label["pad"][f"r{i}{i + 1}"] - 2.0) for i in (1, 2, 3))
    wtp_err = max(abs(by_label["wtp"][f"r{i}{i + 1}"] - 2.0) for i in (1, 2, 3))
    assert pad_err <= wtp_err + 0.1
    # Strict priority produces far larger spacing than requested.
    assert by_label["strict"]["r12"] > by_label["wtp"]["r12"]


def test_additive_convergence(benchmark):
    rows = benchmark.pedantic(
        lambda: additive_convergence(utilization=0.97, horizon=3e5, warmup=1.5e4),
        rounds=1, iterations=1,
    )
    print(banner("Ablation: additive model (Eq 3) heavy-load spacing"))
    print(format_ablation_rows(rows, "additive_convergence"))
    for row in rows:
        target = row.values["target_diff"]
        measured = row.values["measured_diff"]
        assert 0.4 * target < measured < 1.2 * target


def test_wtp_starvation(benchmark):
    row = benchmark.pedantic(
        lambda: wtp_starvation_demo(burst_packets=500),
        rounds=1, iterations=1,
    )
    print(banner("Ablation: WTP short-term starvation (Proposition 2)"))
    print(format_ablation_rows([row], "wtp_starvation"))
    assert row.values["condition_holds"] == 1.0
    assert row.values["overtakers"] == 500.0


def test_adaptive_wtp_correction(benchmark):
    rows = benchmark.pedantic(
        lambda: adaptive_wtp_correction(horizon=2e5, warmup=1e4),
        rounds=1, iterations=1,
    )
    print(banner("Ablation: adaptive SDPs vs plain WTP (mean |ratio error|)"))
    print(format_ablation_rows(rows, "adaptive_wtp_correction"))
    # The controller repairs the moderate-load undershoot...
    moderate = [r for r in rows if r.label in ("rho=0.72", "rho=0.8")]
    assert all(r.values["adaptive-wtp"] < r.values["wtp"] for r in moderate)
    # ...without wrecking the heavy-load regime.
    heavy = next(r for r in rows if r.label == "rho=0.95")
    assert heavy.values["adaptive-wtp"] < 0.4


def test_quantized_wtp_tradeoff(benchmark):
    rows = benchmark.pedantic(
        lambda: quantization_sweep(horizon=1.5e5, warmup=7.5e3),
        rounds=1, iterations=1,
    )
    print(banner("Ablation: quantized WTP (Section 4.2 implementability)"))
    print(format_ablation_rows(rows, "quantization_sweep"))
    by_label = {row.label: row.values["worst_error"] for row in rows}
    # Sub-p-unit quantization is indistinguishable from exact WTP...
    assert abs(by_label["epoch=0.1p"] - by_label["exact"]) < 0.15
    # ...and two orders of magnitude coarser clearly is not.
    assert by_label["epoch=100p"] > by_label["epoch=0.1p"] + 0.1


def test_plr_loss_differentiation(benchmark):
    row = benchmark.pedantic(
        lambda: plr_demo(horizon=1.5e5),
        rounds=1, iterations=1,
    )
    print(banner("Ablation: proportional loss-rate dropper (extension)"))
    print(format_ablation_rows([row], "plr"))
    assert row.values["total_drops"] > 500
    for pair in ("l1/l2", "l2/l3"):
        measured = row.values[f"measured_{pair}"]
        target = row.values[f"target_{pair}"]
        assert measured == pytest.approx(target, rel=0.35)
