"""Sweep-tier benchmarks: sharded vs per-cell dispatch, and RSS bounds.

Two workloads:

* ``BENCH_GRID`` -- a small city grid (8 cells, one trace group of 256
  Pareto flows).  The *same* grid runs through both tiers:
  ``run_city_shard`` (ShardRunner: traces compiled once and shared
  zero-copy, shard dispatch) and ``run_city_sweep`` (SweepRunner with
  per-cell dispatch, every worker compiling its own traces -- the
  pre-shard behavior).  The cells/sec ratio is the sharded tier's
  headline speedup; it comes from *structure* (one trace compile
  instead of eight, dispatch per shard instead of per cell), so it
  holds on a single-core host too.
* ``run_tiny_sweep`` -- N thousand near-trivial single-hop cells
  through the ShardRunner's streaming consume path.  Its report's
  ``coordinator_peak_rss_mb`` is what bounds the coordinator: results
  go to shard files and stream back one at a time, so peak RSS must
  stay flat as the grid grows (recorded alongside the rate by
  ``record_bench``).

Both entry points return the cell count so ``best_rate`` can turn
wall-clock into cells/sec.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.common import SingleHopConfig  # noqa: E402
from repro.runner import ShardRunner, SingleHopTask, SweepRunner  # noqa: E402
from repro.scenarios import CityGridConfig, CityScenarioConfig, run_city  # noqa: E402

#: One trace group (single seed) swept over scheduler x SDP x rho.
#: The traffic shape is the city regime the tier targets: thousands of
#: slow long-lived flows, so trace compilation (per-flow RNG streams)
#: dominates a cell and the shard tier's compile-once sharing is the
#: structural win being measured.
BENCH_GRID = CityGridConfig(
    base=CityScenarioConfig(
        flows=4000, branches=16, flow_gap=1200.0, horizon=3000.0,
        warmup=200.0,
    ),
    schedulers=("wtp", "bpr"),
    sdp_grid=((1.0, 2.0, 4.0, 8.0), (1.0, 4.0, 16.0, 64.0)),
    utilizations=(0.8, 0.9),
    seeds=(1,),
)

BENCH_JOBS = 4


def run_city_shard(jobs: int = BENCH_JOBS) -> int:
    """The bench grid through the sharded tier (shared traces)."""
    with ShardRunner(jobs=jobs, cache=None) as runner:
        points = run_city(BENCH_GRID, runner=runner)
    return len(points)


def run_city_sweep(jobs: int = BENCH_JOBS) -> int:
    """The bench grid through SweepRunner per-cell dispatch.

    Workers get no shared traces, so each cell compiles its own -- the
    cost profile every city sweep had before the sharded tier.
    """
    with SweepRunner(jobs=jobs, cache=None, chunksize=1) as runner:
        points = run_city(BENCH_GRID, runner=runner)
    return len(points)


def tiny_tasks(cells: int) -> list[SingleHopTask]:
    """N near-trivial single-hop cells (distinct seeds, no caching)."""
    return [
        SingleHopTask(
            config=SingleHopConfig(
                scheduler="wtp", utilization=0.95, horizon=1500.0,
                warmup=100.0, seed=seed,
            )
        )
        for seed in range(cells)
    ]


def tiny_cell_summary(task: SingleHopTask) -> dict:
    """Raw per-class mean delays of one tiny cell.

    Unlike :func:`single_hop_summary` this records no delay *ratios*:
    at a 1500-unit horizon the occasional seed leaves a class with zero
    mean delay and the ratio would divide by zero.  The runner-overhead
    benchmark only needs a small JSON payload per cell.
    """
    from repro.experiments.common import generate_trace, replay_through_scheduler
    from repro.schedulers.registry import make_scheduler

    config = task.config
    trace = generate_trace(config)
    result = replay_through_scheduler(
        trace, make_scheduler(config.scheduler, config.sdps), config
    )
    return {
        "mean_delays": result.monitor.mean_delays(),
        "counts": result.monitor.counts(),
    }


def run_tiny_sweep(cells: int, jobs: int = BENCH_JOBS) -> tuple[int, float]:
    """``cells`` tiny cells, streamed; ``(count, peak_rss_mb)``.

    Results stream through ``consume`` into a constant-size aggregate
    (per-class delay sums), never a list -- the coordinator-RSS shape
    of a real 10^4-cell sweep.
    """
    totals = [0.0, 0.0, 0.0, 0.0]
    done = 0

    def consume(index: int, payload: dict) -> None:
        nonlocal done
        done += 1
        for i, d in enumerate(payload["mean_delays"]):
            if d == d:  # skip NaN (idle class in a tiny cell)
                totals[i] += d

    with ShardRunner(jobs=jobs, cache=None) as runner:
        runner.map(tiny_cell_summary, tiny_tasks(cells), consume=consume)
        report = runner.last_report
    assert done == cells, f"streamed {done} of {cells} cells"
    return cells, report.coordinator_peak_rss_mb


if __name__ == "__main__":
    import time

    for label, fn in (("shard", run_city_shard), ("sweep", run_city_sweep)):
        start = time.perf_counter()
        count = fn()
        rate = count / (time.perf_counter() - start)
        print(f"{label}: {rate:.2f} cells/sec")
