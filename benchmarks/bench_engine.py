"""Microbenchmarks of the simulation substrate itself.

These are true pytest-benchmark measurements (multiple rounds): kernel
event throughput, per-scheduler packet forwarding cost, and the Lindley
FCFS recursion, so regressions in the hot paths are visible.
"""

from __future__ import annotations

import numpy as np

from repro.core.conservation import fcfs_waiting_times
from repro.schedulers import make_scheduler
from repro.sim import Link, PacketSink, Simulator
from repro.sim.rng import RandomStreams
from repro.traffic import (
    FixedPacketSize,
    PacketIdAllocator,
    PoissonInterarrivals,
    TrafficSource,
)


def run_kernel_events(num_events: int) -> int:
    sim = Simulator()

    def chain(remaining: int) -> None:
        if remaining:
            sim.schedule_after(1.0, chain, remaining - 1)

    sim.schedule(0.0, chain, num_events)
    sim.run()
    return sim.events_processed


def test_kernel_event_throughput(benchmark):
    processed = benchmark(run_kernel_events, 20_000)
    assert processed == 20_001


def forward_packets(
    scheduler_name: str,
    horizon: float = 5e3,
    columnar: bool | None = None,
) -> int:
    """Single-link forwarding; ``columnar`` overrides the link's packet
    representation (None = the module default, normally columnar)."""
    sim = Simulator()
    streams = RandomStreams(0)
    scheduler = make_scheduler(scheduler_name, (1.0, 2.0, 4.0, 8.0))
    link = Link(
        sim, scheduler, capacity=1.0, target=PacketSink(), columnar=columnar
    )
    ids = PacketIdAllocator()
    for class_id in range(4):
        TrafficSource(
            sim, link, class_id,
            PoissonInterarrivals(4.0 / 0.95, streams.generator()),
            FixedPacketSize(1.0), ids=ids,
        ).start()
    sim.run(until=horizon)
    return link.departures


def test_wtp_forwarding_throughput(benchmark):
    departures = benchmark(forward_packets, "wtp")
    assert departures > 3000


def test_bpr_forwarding_throughput(benchmark):
    departures = benchmark(forward_packets, "bpr")
    assert departures > 3000


def test_fcfs_forwarding_throughput(benchmark):
    departures = benchmark(forward_packets, "fcfs")
    assert departures > 3000


def test_lindley_recursion_throughput(benchmark):
    rng = np.random.default_rng(1)
    times = np.cumsum(rng.exponential(1.05, size=100_000))
    sizes = np.ones(100_000)
    waits = benchmark(fcfs_waiting_times, times, sizes, 1.0)
    assert len(waits) == 100_000


def run_cancellable_events(num_events: int) -> int:
    """Handle-based scheduling: the slow path the tuple heap avoids."""
    sim = Simulator()

    def chain(remaining: int) -> None:
        if remaining:
            sim.schedule_cancellable(sim.now + 1.0, chain, remaining - 1)

    sim.schedule_cancellable(0.0, chain, num_events)
    sim.run()
    return sim.events_processed


def test_cancellable_event_throughput(benchmark):
    processed = benchmark(run_cancellable_events, 20_000)
    assert processed == 20_001


def replay_trace(num_packets: int) -> int:
    """TraceSource replay throughput (batched numpy -> list conversion)."""
    from repro.traffic.trace import ArrivalTrace, TraceSource

    rng = np.random.default_rng(3)
    trace = ArrivalTrace(
        times=np.cumsum(rng.exponential(1.1, size=num_packets)),
        class_ids=rng.integers(0, 4, size=num_packets),
        sizes=np.ones(num_packets),
    )
    sim = Simulator()
    scheduler = make_scheduler("wtp", (1.0, 2.0, 4.0, 8.0))
    link = Link(sim, scheduler, capacity=1.0, target=PacketSink())
    TraceSource(sim, link, trace).start()
    sim.run()
    return link.departures


def test_trace_replay_throughput(benchmark):
    departures = benchmark(replay_trace, 20_000)
    assert departures == 20_000


def run_multihop_cell(scheduler: str = "wtp") -> int:
    """Table 1 smoke cell (4 hops, rho=0.85, compiled arrivals).

    The chain-fused drain kernel's guarded workload: every hop is a
    coupled server behind a ``FlowDemux`` and all cross-traffic rides
    one ``ArrivalCursor``, so this cell collapses to a handful of
    calendar events per busy period when chain fusion engages -- and
    reverts to roughly the evented rate when it does not.  Non-stock
    schedulers (``drr`` et al.) additionally exercise the generated
    drain bodies (:mod:`repro.schedulers.draingen`).  Returns total
    departures across all hops (the throughput work unit).
    """
    import warnings

    from repro.network.multihop import MultiHopConfig, run_multihop

    config = MultiHopConfig(
        hops=4,
        utilization=0.85,
        scheduler=scheduler,
        experiments=4,
        warmup=2000.0,
        experiment_period=500.0,
        drain=1000.0,
        seed=7,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        result = run_multihop(config)
    return sum(result.hop_departures)


def test_multihop_cell_throughput(benchmark):
    departures = benchmark(run_multihop_cell, "wtp")
    assert departures > 100_000


def test_multihop_drr_cell_throughput(benchmark):
    departures = benchmark(run_multihop_cell, "drr")
    assert departures > 100_000


def run_fanin_cell(scheduler: str = "wtp", horizon: float = 5e3) -> int:
    """Fan-in merge cell: two upstream links plus merge-point cross
    traffic feeding one double-capacity server, all sources compiled
    onto one ``ArrivalCursor``.

    Guards the chain walk's upstream fan-in fixpoint: the whole merge
    fuses into one drain only when each entry discovers its sibling
    upstream, so this cell's throughput collapses toward the evented
    rate if fan-in discovery stops engaging.  Returns total departures
    across all three links.
    """
    from repro.traffic import (
        ArrivalCursor,
        CompiledMixedSource,
        ParetoInterarrivals,
    )

    sim = Simulator()
    streams = RandomStreams(5)
    ids = PacketIdAllocator()
    sdps = (1.0, 2.0, 4.0, 8.0)
    mix = (0.4, 0.3, 0.2, 0.1)
    merge = Link(
        sim, make_scheduler(scheduler, sdps), capacity=2.0,
        target=PacketSink(), name="merge",
    )
    links = [merge]
    cursor = ArrivalCursor(sim)
    for i in range(2):
        upstream = Link(
            sim, make_scheduler(scheduler, sdps), capacity=1.0,
            target=merge, name=f"up{i}",
        )
        links.append(upstream)
        cursor.add(
            CompiledMixedSource(
                upstream,
                ParetoInterarrivals(2.6, 1.9, streams.generator()),
                mix, 1.0, streams.generator(), ids=ids,
            )
        )
    cursor.add(
        CompiledMixedSource(
            merge,
            ParetoInterarrivals(2.6, 1.9, streams.generator()),
            mix, 1.0, streams.generator(), ids=ids,
        )
    )
    cursor.start()
    sim.run(until=horizon)
    return sum(link.departures for link in links)


def test_fanin_cell_throughput(benchmark):
    departures = benchmark(run_fanin_cell, "wtp")
    assert departures > 5_000


def run_small_sweep(jobs: int) -> int:
    """SweepRunner overhead on a small cache-less single-hop sweep."""
    from repro.experiments.common import SingleHopConfig
    from repro.runner import SingleHopTask, SweepRunner, single_hop_summary

    runner = SweepRunner(jobs=jobs, cache=None)
    tasks = [
        SingleHopTask(
            config=SingleHopConfig(
                scheduler="wtp", utilization=0.9, horizon=2e3,
                warmup=100.0, seed=seed,
            )
        )
        for seed in range(1, 5)
    ]
    summaries = runner.map(single_hop_summary, tasks)
    return len(summaries)


def test_sweep_runner_serial_throughput(benchmark):
    completed = benchmark(run_small_sweep, 1)
    assert completed == 4
