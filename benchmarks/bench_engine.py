"""Microbenchmarks of the simulation substrate itself.

These are true pytest-benchmark measurements (multiple rounds): kernel
event throughput, per-scheduler packet forwarding cost, and the Lindley
FCFS recursion, so regressions in the hot paths are visible.
"""

from __future__ import annotations

import numpy as np

from repro.core.conservation import fcfs_waiting_times
from repro.schedulers import make_scheduler
from repro.sim import Link, PacketSink, Simulator
from repro.sim.rng import RandomStreams
from repro.traffic import (
    FixedPacketSize,
    PacketIdAllocator,
    PoissonInterarrivals,
    TrafficSource,
)


def run_kernel_events(num_events: int) -> int:
    sim = Simulator()

    def chain(remaining: int) -> None:
        if remaining:
            sim.schedule_after(1.0, chain, remaining - 1)

    sim.schedule(0.0, chain, num_events)
    sim.run()
    return sim.events_processed


def test_kernel_event_throughput(benchmark):
    processed = benchmark(run_kernel_events, 20_000)
    assert processed == 20_001


def forward_packets(scheduler_name: str, horizon: float = 5e3) -> int:
    sim = Simulator()
    streams = RandomStreams(0)
    scheduler = make_scheduler(scheduler_name, (1.0, 2.0, 4.0, 8.0))
    link = Link(sim, scheduler, capacity=1.0, target=PacketSink())
    ids = PacketIdAllocator()
    for class_id in range(4):
        TrafficSource(
            sim, link, class_id,
            PoissonInterarrivals(4.0 / 0.95, streams.generator()),
            FixedPacketSize(1.0), ids=ids,
        ).start()
    sim.run(until=horizon)
    return link.departures


def test_wtp_forwarding_throughput(benchmark):
    departures = benchmark(forward_packets, "wtp")
    assert departures > 3000


def test_bpr_forwarding_throughput(benchmark):
    departures = benchmark(forward_packets, "bpr")
    assert departures > 3000


def test_fcfs_forwarding_throughput(benchmark):
    departures = benchmark(forward_packets, "fcfs")
    assert departures > 3000


def test_lindley_recursion_throughput(benchmark):
    rng = np.random.default_rng(1)
    times = np.cumsum(rng.exponential(1.05, size=100_000))
    sizes = np.ones(100_000)
    waits = benchmark(fcfs_waiting_times, times, sizes, 1.0)
    assert len(waits) == 100_000
