"""Figure 1: average-delay ratios between successive classes vs load.

Paper reference (reading the plotted points):

* Fig 1a (SDP ratio 2, target 2.0): ratios ~1.5 at rho=0.70, rising
  monotonically; WTP essentially on 2.0 by rho=0.95-0.999, BPR close
  but below WTP.
* Fig 1b (SDP ratio 4, target 4.0): ~1.7-2.4 at rho=0.70, WTP near 4.0
  at the highest loads, BPR lagging.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figure1 import (
    SDP_RATIO_2,
    SDP_RATIO_4,
    FigureOneConfig,
    format_figure1,
    run_figure1,
)

from _helpers import banner

BENCH_SCALE = dict(seeds=(1, 2), horizon=2.5e5, warmup=1.2e4)

PAPER_REFERENCE = {
    2.0: {0.70: 1.5, 0.95: 1.9, 0.999: 2.0},
    4.0: {0.70: 1.8, 0.95: 3.2, 0.999: 4.0},
}


def _run(sdps):
    config = FigureOneConfig(sdps=sdps, **BENCH_SCALE)
    return run_figure1(config)


@pytest.mark.parametrize(
    "sdps,label,target",
    [(SDP_RATIO_2, "1a", 2.0), (SDP_RATIO_4, "1b", 4.0)],
)
def test_figure1(benchmark, sdps, label, target):
    points = benchmark.pedantic(_run, args=(sdps,), rounds=1, iterations=1)
    print(banner(f"Figure {label} (desired ratio {target:g})"))
    print(format_figure1(points))
    reference = PAPER_REFERENCE[target]
    print(
        "paper reference (approx): "
        + ", ".join(f"rho={r:g}: {v:g}" for r, v in reference.items())
    )

    wtp = {p.utilization: p for p in points if p.scheduler == "wtp"}
    bpr = {p.utilization: p for p in points if p.scheduler == "bpr"}
    # Shape 1: monotone-ish convergence toward the target for WTP.
    assert wtp[0.999].mean_ratio == pytest.approx(target, rel=0.10)
    assert wtp[0.70].mean_ratio < 0.90 * target  # documented undershoot
    # Shape 2: accuracy improves with load.
    assert wtp[0.95].worst_relative_error < wtp[0.70].worst_relative_error
    # Shape 3: WTP at least as accurate as BPR in the heavy-load region.
    wtp_err = np.mean([wtp[r].worst_relative_error for r in (0.90, 0.95)])
    bpr_err = np.mean([bpr[r].worst_relative_error for r in (0.90, 0.95)])
    assert wtp_err <= bpr_err * 1.2
    # Shape 4: all plotted points are feasible DDP operating points.
    assert all(p.feasible for p in points)
