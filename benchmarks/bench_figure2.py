"""Figure 2: delay ratios vs class load distribution at rho = 0.95.

Paper reference: WTP sits on the target ratio (2.0 / 4.0) for *all*
seven load distributions; BPR is accurate only for balanced loads and
drifts when some classes dominate the load (highly loaded classes see
more delay than their SDPs specify).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figure1 import SDP_RATIO_2, SDP_RATIO_4
from repro.experiments.figure2 import (
    FigureTwoConfig,
    format_figure2,
    run_figure2,
)

from _helpers import banner

BENCH_SCALE = dict(seeds=(1, 2), horizon=2.5e5, warmup=1.2e4)


def _run(sdps):
    return run_figure2(FigureTwoConfig(sdps=sdps, **BENCH_SCALE))


@pytest.mark.parametrize(
    "sdps,label,target",
    [(SDP_RATIO_2, "2a", 2.0), (SDP_RATIO_4, "2b", 4.0)],
)
def test_figure2(benchmark, sdps, label, target):
    points = benchmark.pedantic(_run, args=(sdps,), rounds=1, iterations=1)
    print(banner(f"Figure {label} (desired ratio {target:g}, rho = 0.95)"))
    print(format_figure2(points))
    print(
        "paper reference: WTP on target for every distribution; BPR "
        "biased against heavily loaded classes"
    )

    wtp_errors = [
        p.worst_relative_error for p in points if p.scheduler == "wtp"
    ]
    bpr_errors = [
        p.worst_relative_error for p in points if p.scheduler == "bpr"
    ]
    # Shape 1: WTP stays close to target across ALL distributions.  The
    # band is wider for SDP ratio 4: the paper's own Figure 1b shows
    # WTP at ~3.2-3.6 (target 4) at rho = 0.95.
    assert max(wtp_errors) < (0.35 if target == 2.0 else 0.55)
    # Shape 2: BPR's worst case across distributions is clearly worse
    # than WTP's worst case (load-distribution sensitivity).
    assert max(bpr_errors) > max(wtp_errors)
    # Shape 3: on average WTP beats BPR.
    assert np.mean(wtp_errors) < np.mean(bpr_errors)
    assert all(p.feasible for p in points)
