"""Perf smoke check: compare fresh microbenchmarks to the committed baseline.

Runs the engine and source microbenchmark collectors and compares every
metric present in both the fresh run and the baseline.  When
``--baseline`` is omitted the canonical committed baseline
(``benchmarks/baseline.json``) is used, falling back to the newest
``BENCH_*.json`` in the repository root if the canonical file is
missing.

Most regressions beyond the threshold print a ``::warning::`` line
(rendered as an annotation by GitHub Actions) but do not fail the job --
shared CI runners are far too noisy for a tight hard gate.  The
throughput metrics guarded by the drain kernels
(``trace_replay_packets_per_sec``, ``wtp_forwarded_packets_per_sec``,
``multihop_packets_per_sec`` guarding the *chain-fused* drain across
coupled hops, ``multihop_drr_packets_per_sec`` guarding the *generated*
non-stock drain bodies, and ``fanin_packets_per_sec`` guarding the
chain walk's upstream fan-in fixpoint) are the exception: a regression
beyond ``--hard-threshold`` (default 35%) means a drain kernel stopped
engaging, which no runner noise explains, so the check exits non-zero
with a ``::error::`` annotation.

Because bench records travel between hosts (committed BENCH_*.json
files were recorded on whatever machine ran that PR), every comparison
also prints **host-normalized context**: the fresh-to-baseline ratio of
``kernel_events_per_sec`` -- the pure event-kernel metric that no
scheduler or drain change in this repo moves -- is taken as the speed
ratio of *this host* to the *baseline host*.  A warning whose raw
factor matches the host factor is a slower machine, not a regression;
each warn/fail line therefore also shows its host-normalized factor
(raw factor divided by host factor), and the context is embedded in
the ``--out`` JSON.

Two sweep-tier numbers ride along: ``sweep_cells_per_sec`` (the city
bench grid through the sharded runner, compared to baseline like any
throughput metric) and ``sweep1k_coordinator_peak_rss_mb`` (peak
coordinator RSS while streaming 10^3 tiny cells through the shard
store; gated on an absolute ceiling via ``--rss-gate`` -- the
coordinator holds O(shard) results, so blowing the ceiling means
results are accumulating in RAM again).

The hybrid fluid/packet engine contributes absolute hard gates (from
:mod:`bench_hybrid`'s smoke cells): the DDP fidelity error of a hybrid
run against its pure-packet replay must stay within the epsilon knob
(``--fidelity-gate``) on both the single-hub smoke cell and the
multihop (2 branches x 3 hops) smoke cell, an ``epsilon=0`` run must
be bit-identical to the pure path, and the multihop ``epsilon=0``
sweep must be bit-identical for *every* registered scheduler.  All are
correctness contracts, not throughput numbers, so neither baseline age
nor host speed excuses them.  The smoke cells' pure/hybrid speedups
ride along as ordinary baseline-compared metrics
(``hybrid_smoke_speedup``, ``hybrid_multihop_smoke_speedup``).

    PYTHONPATH=src python benchmarks/check_regression.py
    PYTHONPATH=src python benchmarks/check_regression.py --out perf.json

The fresh metrics are written to ``--out`` (default ``perf_smoke.json``)
as ``{"metrics": {...}, "host_context": {...}}`` so CI can upload them
as an artifact -- the same shape as a BENCH_*.json record, so an
uploaded ``perf_smoke.json`` is itself usable as a ``--baseline``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import bench_hybrid  # noqa: E402
import bench_sources  # noqa: E402
import bench_sweep  # noqa: E402
from bench_engine import (  # noqa: E402
    forward_packets,
    replay_trace,
    run_cancellable_events,
    run_fanin_cell,
    run_kernel_events,
    run_multihop_cell,
)
from record_bench import best_rate, improvement  # noqa: E402

#: Warn when a metric lands below (1 - threshold) of the baseline.
DEFAULT_THRESHOLD = 0.20

#: Canonical committed baseline used when ``--baseline`` is omitted.
CANONICAL_BASELINE = REPO_ROOT / "benchmarks" / "baseline.json"

#: Metrics that FAIL the job (exit 1) past ``--hard-threshold``: each
#: collapses by far more than that if its drain kernel stops engaging
#: (the multihop cell guards the chain-fused drain across coupled
#: hops), and runner noise has never approached it.
HARD_FAIL_METRICS = (
    "trace_replay_packets_per_sec",
    "wtp_forwarded_packets_per_sec",
    "multihop_packets_per_sec",
    "multihop_drr_packets_per_sec",
    "fanin_packets_per_sec",
)

#: Relative slowdown on a HARD_FAIL_METRICS entry that fails the job.
DEFAULT_HARD_THRESHOLD = 0.35

#: Packet allocations per forwarded packet on the unobserved fused WTP
#: cell.  The columnar hot path allocates only at busy-period opens and
#: drain parks (~0.05 in practice); a per-packet object regression sits
#: at >= 1.0, so the gate has a wide noise margin while still hard-
#: failing the moment the fused path starts building Packets again.
DEFAULT_ALLOCATION_GATE = 0.25

#: Max coordinator peak RSS (MB) while streaming 10^3 tiny cells
#: through the shard store.  The measured figure is ~45 MB (interpreter
#: + numpy + per-cell keys); the store keeps result payloads on disk,
#: so comfortably clearing this ceiling at 10^3 cells is what certifies
#: the O(shard) coordinator-memory claim on CI.
DEFAULT_RSS_GATE_MB = 256.0

#: Metrics gated on absolute value (lower is better), excluded from the
#: baseline speedup comparison -- ``improvement()`` reads throughput
#: semantics into anything not named ``*_sec``.
ABSOLUTE_GATED_METRICS = (
    "packets_allocated_per_forwarded_packet",
    "sweep1k_coordinator_peak_rss_mb",
    "hybrid_ddp_fidelity_error",
    "hybrid_eps0_bit_identical",
    "hybrid_multihop_ddp_fidelity_error",
    "hybrid_multihop_eps0_bit_identical",
)

#: Max mean relative per-class mean-delay error of the hybrid smoke
#: cell against its pure-packet replay.  The hybrid engine's whole
#: contract is "fluid fast-forward within the epsilon knob", so error
#: beyond epsilon is a correctness failure, not a perf regression --
#: it hard-fails regardless of baseline or host speed.
DEFAULT_FIDELITY_GATE = bench_hybrid.BENCH_EPSILON


def measure_packet_allocations() -> dict[str, float]:
    """Packet allocations per forwarded packet on the fused WTP cell.

    Primary counter: every ``Packet.__init__`` call during an
    unobserved ``forward_packets('wtp')`` run (counted via a temporary
    wrapper, restored in ``finally``).  tracemalloc runs alongside as a
    cross-check that the columnar path is not hiding equivalent churn
    in some other per-packet object -- its peak-bytes-per-packet figure
    is reported but not gated (the event calendar and gap buffers
    legitimately hold transient memory).
    """
    import tracemalloc

    from repro.sim.packet import Packet

    count = 0
    original_init = Packet.__init__

    def counting_init(self, *args, **kwargs):
        nonlocal count
        count += 1
        original_init(self, *args, **kwargs)

    Packet.__init__ = counting_init
    tracemalloc.start()
    try:
        forwarded = forward_packets("wtp", columnar=True)
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
        Packet.__init__ = original_init
    return {
        "packets_allocated_per_forwarded_packet": count / forwarded,
        "tracemalloc_peak_bytes_per_forwarded_packet": peak / forwarded,
    }


def compare_metrics(
    metrics: dict[str, float],
    baseline: dict[str, float],
    threshold: float,
    hard_threshold: float,
    host_factor: float = 1.0,
) -> list[tuple[str, str, str]]:
    """Compare EVERY shared metric; never stops at the first failure.

    Returns ``(level, name, message)`` findings -- ``level`` is
    ``"ok"``, ``"warn"``, or ``"fail"`` -- one per metric present in
    both dicts, in metric order, so the caller (and CI logs) always see
    the whole picture before the exit code is decided.  ``host_factor``
    is this host's speed relative to the baseline host (the
    kernel-events ratio); warn/fail lines include the host-normalized
    factor so a uniformly slower machine reads as ~1.00x normalized.
    """
    findings: list[tuple[str, str, str]] = []
    for name, value in metrics.items():
        if name not in baseline or name in ABSOLUTE_GATED_METRICS:
            continue
        factor = improvement(name, value, baseline[name])
        detail = f"{factor:.2f}x of baseline ({value:,.1f} vs {baseline[name]:,.1f})"
        if host_factor > 0 and abs(host_factor - 1.0) > 1e-9:
            detail += f", {factor / host_factor:.2f}x host-normalized"
        if name in HARD_FAIL_METRICS and factor < 1.0 - hard_threshold:
            findings.append(
                (
                    "fail",
                    name,
                    f"{detail} -- beyond the hard threshold; the drain "
                    "kernel has likely stopped engaging",
                )
            )
        elif factor < 1.0 - threshold:
            findings.append(("warn", name, detail))
        else:
            findings.append(("ok", name, f"{factor:.2f}x of baseline"))
    return findings


def collect(repeats: int) -> dict[str, float]:
    """Engine + source metrics, keyed compatibly with BENCH_*.json."""
    kernel_events = 100_000
    trace_packets = 50_000
    metrics = {
        "kernel_events_per_sec": best_rate(
            run_kernel_events, kernel_events, kernel_events, repeats
        ),
        "cancellable_events_per_sec": best_rate(
            run_cancellable_events, kernel_events, kernel_events, repeats
        ),
        "trace_replay_packets_per_sec": best_rate(
            replay_trace, trace_packets, trace_packets, repeats
        ),
        "wtp_forwarded_packets_per_sec": best_rate(
            forward_packets, "wtp", forward_packets("wtp"), repeats
        ),
        "columnar_forwarded_packets_per_sec": best_rate(
            _forward_columnar, "wtp", _forward_columnar("wtp"), repeats
        ),
        "multihop_packets_per_sec": best_rate(
            run_multihop_cell, "wtp", run_multihop_cell("wtp"), repeats
        ),
        "multihop_drr_packets_per_sec": best_rate(
            run_multihop_cell, "drr", run_multihop_cell("drr"), repeats
        ),
        "fanin_packets_per_sec": best_rate(
            run_fanin_cell, "wtp", run_fanin_cell("wtp"), repeats
        ),
    }
    metrics["sweep_cells_per_sec"] = best_rate(
        bench_sweep.run_city_shard,
        bench_sweep.BENCH_JOBS,
        len(list(bench_sweep.BENCH_GRID.cells())),
        repeats,
    )
    metrics.update(bench_sources.collect(repeats))
    return metrics


def measure_sweep_rss(cells: int = 1_000) -> float:
    """Coordinator peak RSS (MB) streaming ``cells`` tiny shard cells."""
    _, rss_mb = bench_sweep.run_tiny_sweep(cells)
    return rss_mb


def _forward_columnar(name: str) -> int:
    return forward_packets(name, columnar=True)


def latest_baseline() -> Path | None:
    """Newest committed ``BENCH_*.json`` by date in the file name."""
    candidates = sorted(REPO_ROOT.glob("BENCH_*.json"))
    return candidates[-1] if candidates else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "perf_smoke.json",
        help="where to write the fresh metrics JSON",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=(
            "baseline JSON (default: benchmarks/baseline.json, falling "
            "back to the newest BENCH_*.json in the repo root)"
        ),
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative slowdown that triggers a warning (default 0.20)",
    )
    parser.add_argument(
        "--hard-threshold",
        type=float,
        default=DEFAULT_HARD_THRESHOLD,
        help=(
            "relative slowdown on the replay throughput metrics "
            f"({', '.join(HARD_FAIL_METRICS)}) that fails the job "
            "(default 0.35)"
        ),
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per metric"
    )
    parser.add_argument(
        "--allocation-gate",
        type=float,
        default=DEFAULT_ALLOCATION_GATE,
        help=(
            "max Packet allocations per forwarded packet on the "
            "unobserved fused WTP cell before the job fails "
            f"(default {DEFAULT_ALLOCATION_GATE}; per-packet object "
            "churn measures >= 1.0)"
        ),
    )
    parser.add_argument(
        "--fidelity-gate",
        type=float,
        default=DEFAULT_FIDELITY_GATE,
        help=(
            "max DDP fidelity error of the hybrid smoke cell vs its "
            f"pure-packet replay (default {DEFAULT_FIDELITY_GATE:g}, "
            "the epsilon knob of the run itself; exceeding it means "
            "the fluid segments drifted beyond their error bound)"
        ),
    )
    parser.add_argument(
        "--rss-gate",
        type=float,
        default=DEFAULT_RSS_GATE_MB,
        help=(
            "max coordinator peak RSS in MB while streaming 10^3 tiny "
            f"cells through the shard store (default {DEFAULT_RSS_GATE_MB:g}; "
            "measured ~45 MB -- blowing this means results accumulate "
            "in coordinator RAM again)"
        ),
    )
    args = parser.parse_args(argv)

    # Resolve the baseline before the (slow) collection so a bad path
    # fails in milliseconds, not after the full benchmark run.
    baseline_path = args.baseline
    if baseline_path is None:
        if CANONICAL_BASELINE.exists():
            baseline_path = CANONICAL_BASELINE
            print(
                "--baseline omitted; using canonical committed baseline "
                f"{baseline_path.relative_to(REPO_ROOT)}"
            )
        else:
            baseline_path = latest_baseline()
            if baseline_path is not None:
                print(
                    "--baseline omitted and benchmarks/baseline.json "
                    f"missing; falling back to {baseline_path.name}"
                )
    if baseline_path is not None and not baseline_path.exists():
        parser.error(f"baseline not found: {baseline_path}")

    metrics = collect(args.repeats)
    allocations = measure_packet_allocations()
    metrics.update(allocations)
    metrics["sweep1k_coordinator_peak_rss_mb"] = measure_sweep_rss()
    hybrid = bench_hybrid.smoke()
    metrics["hybrid_smoke_speedup"] = hybrid["speedup"]
    metrics["hybrid_ddp_fidelity_error"] = hybrid["fidelity_error"]
    metrics["hybrid_eps0_bit_identical"] = float(
        hybrid["epsilon0_bit_identical"]
    )
    multihop = bench_hybrid.multihop_smoke()
    metrics["hybrid_multihop_smoke_speedup"] = multihop["speedup"]
    metrics["hybrid_multihop_ddp_fidelity_error"] = multihop[
        "fidelity_error"
    ]
    metrics["hybrid_multihop_eps0_bit_identical"] = float(
        multihop["epsilon0_bit_identical_all_schedulers"]
    )

    baseline = None
    if baseline_path is not None:
        baseline = json.loads(baseline_path.read_text())["metrics"]

    # Host-normalized context: the event kernel exercises no scheduler
    # or drain code, so its fresh/baseline ratio is the speed of this
    # host relative to the one that recorded the baseline.  Read every
    # raw warning against it before calling something a regression.
    host_context = None
    reference = "kernel_events_per_sec"
    if baseline and reference in metrics and baseline.get(reference, 0) > 0:
        host_factor = metrics[reference] / baseline[reference]
        host_context = {
            "reference_metric": reference,
            "this_host": round(metrics[reference], 1),
            "baseline_host": round(baseline[reference], 1),
            "host_factor": round(host_factor, 4),
            "baseline": baseline_path.name,
        }
    else:
        host_factor = 1.0

    args.out.write_text(
        json.dumps(
            {
                "metrics": {k: round(v, 4) for k, v in metrics.items()},
                "host_context": host_context,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"fresh metrics written to {args.out}")

    # The allocation gate is absolute (no baseline needed): the
    # unobserved fused path must stay object-free.
    failed = 0
    alloc_rate = allocations["packets_allocated_per_forwarded_packet"]
    peak = allocations["tracemalloc_peak_bytes_per_forwarded_packet"]
    if alloc_rate > args.allocation_gate:
        failed += 1
        print(
            f"::error::allocation gate: {alloc_rate:.3f} Packet "
            f"allocations per forwarded packet (gate "
            f"{args.allocation_gate}) -- the unobserved fused path is "
            "building per-packet objects again"
        )
    else:
        print(
            f"{'packet_allocations_per_forwarded':>36}: {alloc_rate:.3f} "
            f"(gate {args.allocation_gate}; tracemalloc peak "
            f"{peak:,.0f} B/pkt)"
        )

    # The RSS gate is also absolute: streaming 10^3 cells must not
    # accumulate result payloads in the coordinator.
    rss_mb = metrics["sweep1k_coordinator_peak_rss_mb"]
    if rss_mb > args.rss_gate:
        failed += 1
        print(
            f"::error::coordinator RSS gate: {rss_mb:.1f} MB peak while "
            f"streaming 10^3 shard cells (gate {args.rss_gate:g} MB) -- "
            "sweep results are accumulating in coordinator RAM"
        )
    else:
        print(
            f"{'sweep1k_coordinator_peak_rss_mb':>36}: {rss_mb:.1f} "
            f"(gate {args.rss_gate:g} MB)"
        )

    # Two hybrid-engine gates, both absolute: the fluid segments must
    # stay within the epsilon error bound, and epsilon=0 must reproduce
    # the pure packet path bit-for-bit.
    fidelity = metrics["hybrid_ddp_fidelity_error"]
    if fidelity > args.fidelity_gate:
        failed += 1
        print(
            f"::error::hybrid fidelity gate: DDP error {fidelity:.4f} "
            f"vs the pure-packet replay (gate {args.fidelity_gate:g}) "
            "-- the fluid segments drifted beyond their error bound"
        )
    else:
        print(
            f"{'hybrid_ddp_fidelity_error':>36}: {fidelity:.4f} "
            f"(gate {args.fidelity_gate:g}; smoke speedup "
            f"{hybrid['speedup']:.2f}x, fluid fraction "
            f"{hybrid['fluid_time_fraction']:.2f})"
        )
    if not hybrid["epsilon0_bit_identical"]:
        failed += 1
        print(
            "::error::hybrid epsilon=0 run is not bit-identical to the "
            "pure packet path -- the planner's pure-packet contract broke"
        )
    else:
        print(f"{'hybrid_eps0_bit_identical':>36}: True")

    # The network-wide engine repeats both contracts on a multihop
    # cell: per-link fluid segments with departure propagation must
    # stay within epsilon, and the epsilon=0 sweep must be
    # bit-identical for every registered scheduler.
    multihop_fidelity = metrics["hybrid_multihop_ddp_fidelity_error"]
    if multihop_fidelity > args.fidelity_gate:
        failed += 1
        print(
            f"::error::hybrid multihop fidelity gate: DDP error "
            f"{multihop_fidelity:.4f} vs the pure-packet replay (gate "
            f"{args.fidelity_gate:g}) -- the per-link fluid segments "
            "drifted beyond their error bound"
        )
    else:
        print(
            f"{'hybrid_multihop_ddp_fidelity_error':>36}: "
            f"{multihop_fidelity:.4f} (gate {args.fidelity_gate:g}; "
            f"smoke speedup {multihop['speedup']:.2f}x, fluid fraction "
            f"{multihop['fluid_time_fraction']:.2f})"
        )
    if not multihop["epsilon0_bit_identical_all_schedulers"]:
        failed += 1
        print(
            "::error::hybrid multihop epsilon=0 run is not bit-identical "
            "to the pure packet path for: "
            + ", ".join(multihop["eps0_broken_schedulers"])
        )
    else:
        print(f"{'hybrid_multihop_eps0_bit_identical':>36}: True")

    if baseline is None:
        print("no committed BENCH_*.json baseline; skipping comparison")
        return 1 if failed else 0

    if host_context is not None:
        print(
            f"host context: {reference} at {host_factor:.2f}x the "
            f"baseline host ({host_context['this_host']:,.0f} vs "
            f"{host_context['baseline_host']:,.0f} events/sec); raw "
            "factors below that scale are host speed, not regressions"
        )

    findings = compare_metrics(
        metrics, baseline, args.threshold, args.hard_threshold, host_factor
    )
    warned = 0
    for level, name, message in findings:
        if level == "fail":
            failed += 1
            print(f"::error::perf regression: {name} at {message}")
        elif level == "warn":
            warned += 1
            print(f"::warning::perf regression: {name} at {message}")
        else:
            print(f"{name:>36}: {message}")
    print(
        f"compared {len(findings)} metrics vs {baseline_path.name}: "
        f"{warned} regression warning(s), {failed} hard failure(s)"
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
