"""Perf smoke check: compare fresh microbenchmarks to the committed baseline.

Runs the engine and source microbenchmark collectors and compares every
metric present in both the fresh run and the baseline.  When
``--baseline`` is omitted the canonical committed baseline
(``benchmarks/baseline.json``) is used, falling back to the newest
``BENCH_*.json`` in the repository root if the canonical file is
missing.

Most regressions beyond the threshold print a ``::warning::`` line
(rendered as an annotation by GitHub Actions) but do not fail the job --
shared CI runners are far too noisy for a tight hard gate.  The three
throughput metrics guarded by the drain kernels
(``trace_replay_packets_per_sec``, ``wtp_forwarded_packets_per_sec``,
and ``multihop_packets_per_sec``, the last guarding the *chain-fused*
drain across coupled hops) are the exception: a regression beyond
``--hard-threshold`` (default 35%) means a drain kernel stopped
engaging, which no runner noise explains, so the check exits non-zero
with a ``::error::`` annotation.

    PYTHONPATH=src python benchmarks/check_regression.py
    PYTHONPATH=src python benchmarks/check_regression.py --out perf.json

The fresh metrics are written to ``--out`` (default ``perf_smoke.json``)
so CI can upload them as an artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import bench_sources  # noqa: E402
from bench_engine import (  # noqa: E402
    forward_packets,
    replay_trace,
    run_cancellable_events,
    run_kernel_events,
    run_multihop_cell,
)
from record_bench import best_rate, improvement  # noqa: E402

#: Warn when a metric lands below (1 - threshold) of the baseline.
DEFAULT_THRESHOLD = 0.20

#: Canonical committed baseline used when ``--baseline`` is omitted.
CANONICAL_BASELINE = REPO_ROOT / "benchmarks" / "baseline.json"

#: Metrics that FAIL the job (exit 1) past ``--hard-threshold``: each
#: collapses by far more than that if its drain kernel stops engaging
#: (the multihop cell guards the chain-fused drain across coupled
#: hops), and runner noise has never approached it.
HARD_FAIL_METRICS = (
    "trace_replay_packets_per_sec",
    "wtp_forwarded_packets_per_sec",
    "multihop_packets_per_sec",
)

#: Relative slowdown on a HARD_FAIL_METRICS entry that fails the job.
DEFAULT_HARD_THRESHOLD = 0.35


def collect(repeats: int) -> dict[str, float]:
    """Engine + source metrics, keyed compatibly with BENCH_*.json."""
    kernel_events = 100_000
    trace_packets = 50_000
    metrics = {
        "kernel_events_per_sec": best_rate(
            run_kernel_events, kernel_events, kernel_events, repeats
        ),
        "cancellable_events_per_sec": best_rate(
            run_cancellable_events, kernel_events, kernel_events, repeats
        ),
        "trace_replay_packets_per_sec": best_rate(
            replay_trace, trace_packets, trace_packets, repeats
        ),
        "wtp_forwarded_packets_per_sec": best_rate(
            forward_packets, "wtp", forward_packets("wtp"), repeats
        ),
        "multihop_packets_per_sec": best_rate(
            run_multihop_cell, 1, run_multihop_cell(), repeats
        ),
    }
    metrics.update(bench_sources.collect(repeats))
    return metrics


def latest_baseline() -> Path | None:
    """Newest committed ``BENCH_*.json`` by date in the file name."""
    candidates = sorted(REPO_ROOT.glob("BENCH_*.json"))
    return candidates[-1] if candidates else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "perf_smoke.json",
        help="where to write the fresh metrics JSON",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=(
            "baseline JSON (default: benchmarks/baseline.json, falling "
            "back to the newest BENCH_*.json in the repo root)"
        ),
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative slowdown that triggers a warning (default 0.20)",
    )
    parser.add_argument(
        "--hard-threshold",
        type=float,
        default=DEFAULT_HARD_THRESHOLD,
        help=(
            "relative slowdown on the replay throughput metrics "
            f"({', '.join(HARD_FAIL_METRICS)}) that fails the job "
            "(default 0.35)"
        ),
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per metric"
    )
    args = parser.parse_args(argv)

    # Resolve the baseline before the (slow) collection so a bad path
    # fails in milliseconds, not after the full benchmark run.
    baseline_path = args.baseline
    if baseline_path is None:
        if CANONICAL_BASELINE.exists():
            baseline_path = CANONICAL_BASELINE
            print(
                "--baseline omitted; using canonical committed baseline "
                f"{baseline_path.relative_to(REPO_ROOT)}"
            )
        else:
            baseline_path = latest_baseline()
            if baseline_path is not None:
                print(
                    "--baseline omitted and benchmarks/baseline.json "
                    f"missing; falling back to {baseline_path.name}"
                )
    if baseline_path is not None and not baseline_path.exists():
        parser.error(f"baseline not found: {baseline_path}")

    metrics = collect(args.repeats)
    args.out.write_text(
        json.dumps({k: round(v, 4) for k, v in metrics.items()}, indent=2)
        + "\n"
    )
    print(f"fresh metrics written to {args.out}")

    if baseline_path is None:
        print("no committed BENCH_*.json baseline; skipping comparison")
        return 0
    baseline = json.loads(baseline_path.read_text())["metrics"]

    warned = 0
    compared = 0
    failed = 0
    for name, value in metrics.items():
        if name not in baseline:
            continue
        compared += 1
        factor = improvement(name, value, baseline[name])
        if name in HARD_FAIL_METRICS and factor < 1.0 - args.hard_threshold:
            failed += 1
            print(
                f"::error::perf regression: {name} at {factor:.2f}x of "
                f"{baseline_path.name} ({value:,.1f} vs {baseline[name]:,.1f})"
                " -- beyond the hard threshold; the drain kernel has "
                "likely stopped engaging"
            )
        elif factor < 1.0 - args.threshold:
            warned += 1
            print(
                f"::warning::perf regression: {name} at {factor:.2f}x of "
                f"{baseline_path.name} ({value:,.1f} vs {baseline[name]:,.1f})"
            )
        else:
            print(f"{name:>36}: {factor:.2f}x of baseline")
    print(
        f"compared {compared} metrics vs {baseline_path.name}: "
        f"{warned} regression warning(s), {failed} hard failure(s)"
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
