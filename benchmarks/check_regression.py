"""Perf smoke check: compare fresh microbenchmarks to the committed baseline.

Runs the engine and source microbenchmark collectors, finds the newest
committed ``BENCH_*.json`` in the repository root, and compares every
metric present in both.  Regressions beyond the threshold print a
``::warning::`` line (rendered as an annotation by GitHub Actions) but
never fail the job -- shared CI runners are far too noisy for a hard
gate, so the check is a tripwire for humans, not a merge blocker.

    PYTHONPATH=src python benchmarks/check_regression.py
    PYTHONPATH=src python benchmarks/check_regression.py --out perf.json

The fresh metrics are written to ``--out`` (default ``perf_smoke.json``)
so CI can upload them as an artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import bench_sources  # noqa: E402
from bench_engine import (  # noqa: E402
    forward_packets,
    replay_trace,
    run_cancellable_events,
    run_kernel_events,
)
from record_bench import best_rate, improvement  # noqa: E402

#: Warn when a metric lands below (1 - threshold) of the baseline.
DEFAULT_THRESHOLD = 0.20


def collect(repeats: int) -> dict[str, float]:
    """Engine + source metrics, keyed compatibly with BENCH_*.json."""
    kernel_events = 100_000
    trace_packets = 50_000
    metrics = {
        "kernel_events_per_sec": best_rate(
            run_kernel_events, kernel_events, kernel_events, repeats
        ),
        "cancellable_events_per_sec": best_rate(
            run_cancellable_events, kernel_events, kernel_events, repeats
        ),
        "trace_replay_packets_per_sec": best_rate(
            replay_trace, trace_packets, trace_packets, repeats
        ),
        "wtp_forwarded_packets_per_sec": best_rate(
            forward_packets, "wtp", forward_packets("wtp"), repeats
        ),
    }
    metrics.update(bench_sources.collect(repeats))
    return metrics


def latest_baseline() -> Path | None:
    """Newest committed ``BENCH_*.json`` by date in the file name."""
    candidates = sorted(REPO_ROOT.glob("BENCH_*.json"))
    return candidates[-1] if candidates else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "perf_smoke.json",
        help="where to write the fresh metrics JSON",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline BENCH_*.json (default: newest in the repo root)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative slowdown that triggers a warning (default 0.20)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per metric"
    )
    args = parser.parse_args(argv)

    # Resolve the baseline before the (slow) collection so a bad path
    # fails in milliseconds, not after the full benchmark run.
    baseline_path = args.baseline or latest_baseline()
    if baseline_path is not None and not baseline_path.exists():
        parser.error(f"baseline not found: {baseline_path}")

    metrics = collect(args.repeats)
    args.out.write_text(
        json.dumps({k: round(v, 4) for k, v in metrics.items()}, indent=2)
        + "\n"
    )
    print(f"fresh metrics written to {args.out}")

    if baseline_path is None:
        print("no committed BENCH_*.json baseline; skipping comparison")
        return 0
    baseline = json.loads(baseline_path.read_text())["metrics"]

    warned = 0
    compared = 0
    for name, value in metrics.items():
        if name not in baseline:
            continue
        compared += 1
        factor = improvement(name, value, baseline[name])
        if factor < 1.0 - args.threshold:
            warned += 1
            print(
                f"::warning::perf regression: {name} at {factor:.2f}x of "
                f"{baseline_path.name} ({value:,.1f} vs {baseline[name]:,.1f})"
            )
        else:
            print(f"{name:>36}: {factor:.2f}x of baseline")
    print(
        f"compared {compared} metrics vs {baseline_path.name}: "
        f"{warned} regression warning(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
