"""Source microbenchmarks: scalar vs compiled arrival generation.

Two layers, for every interarrival process (Pareto, Poisson, CBR,
on-off, MMPP):

* *arrivals/sec* -- raw draw throughput: ``next_gap()`` in a Python
  loop vs ``draw_gaps()`` in numpy blocks (what trace compilation pays
  per arrival before the simulator is involved).
* *events/sec* -- end-to-end emission into a simulator sink: a scalar
  :class:`~repro.traffic.source.TrafficSource` (one calendar event per
  packet) vs a :class:`~repro.traffic.compile.CompiledSource` behind an
  :class:`~repro.traffic.compile.ArrivalCursor`.

Run under pytest-benchmark via ``make bench``, or standalone for a
quick table plus JSON metrics:

    PYTHONPATH=src python benchmarks/bench_sources.py [--out sources.json]
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sim.engine import Simulator  # noqa: E402
from repro.traffic import (  # noqa: E402
    ArrivalCursor,
    CompiledSource,
    ConstantInterarrivals,
    FixedPacketSize,
    MMPPInterarrivals,
    OnOffInterarrivals,
    PacketIdAllocator,
    ParetoInterarrivals,
    PoissonInterarrivals,
    TrafficSource,
)

PROCESS_KINDS = ("pareto", "poisson", "cbr", "onoff", "mmpp")

#: Mean gap ~0.01 everywhere so a fixed stop_time implies a comparable
#: arrival count for every process.
MEAN_GAP = 0.01


def make_process(kind: str, seed: int = 0):
    rng = np.random.default_rng(seed)
    if kind == "pareto":
        return ParetoInterarrivals(MEAN_GAP, 1.9, rng)
    if kind == "poisson":
        return PoissonInterarrivals(MEAN_GAP, rng)
    if kind == "cbr":
        return ConstantInterarrivals(MEAN_GAP)
    if kind == "onoff":
        return OnOffInterarrivals(
            peak_gap=MEAN_GAP / 2.0, mean_on=0.1, mean_off=0.1, rng=rng
        )
    if kind == "mmpp":
        return MMPPInterarrivals(
            rate_a=0.5 / MEAN_GAP, rate_b=2.0 / MEAN_GAP,
            mean_sojourn_a=0.1, mean_sojourn_b=0.1, rng=rng,
        )
    raise ValueError(kind)


class _CountingSink:
    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def receive(self, packet) -> None:
        self.count += 1


def draw_scalar(kind: str, n: int) -> int:
    process = make_process(kind)
    next_gap = process.next_gap
    for _ in range(n):
        next_gap()
    return n


def draw_compiled(kind: str, n: int, chunk: int = 16384) -> int:
    process = make_process(kind)
    drawn = 0
    while drawn < n:
        block = min(chunk, n - drawn)
        process.draw_gaps(block)
        drawn += block
    return drawn


def emit_scalar(kind: str, stop_time: float = 200.0) -> int:
    sim = Simulator()
    sink = _CountingSink()
    TrafficSource(
        sim, sink, 0, make_process(kind), FixedPacketSize(100.0),
        ids=PacketIdAllocator(), stop_time=stop_time,
    ).start()
    sim.run()
    return sink.count


def emit_compiled(kind: str, stop_time: float = 200.0) -> int:
    sim = Simulator()
    sink = _CountingSink()
    cursor = ArrivalCursor(sim)
    cursor.add(
        CompiledSource(
            sink, 0, make_process(kind), FixedPacketSize(100.0),
            ids=PacketIdAllocator(), stop_time=stop_time,
        )
    )
    cursor.start()
    sim.run()
    return sink.count


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", PROCESS_KINDS)
def test_draw_scalar_throughput(benchmark, kind):
    drawn = benchmark(draw_scalar, kind, 20_000)
    assert drawn == 20_000


@pytest.mark.parametrize("kind", PROCESS_KINDS)
def test_draw_compiled_throughput(benchmark, kind):
    drawn = benchmark(draw_compiled, kind, 20_000)
    assert drawn == 20_000


@pytest.mark.parametrize("kind", PROCESS_KINDS)
def test_emit_scalar_throughput(benchmark, kind):
    emitted = benchmark(emit_scalar, kind)
    assert emitted > 5_000


@pytest.mark.parametrize("kind", PROCESS_KINDS)
def test_emit_compiled_throughput(benchmark, kind):
    emitted = benchmark(emit_compiled, kind)
    assert emitted > 5_000


# ----------------------------------------------------------------------
# Standalone metric collection (used by record_bench / check_regression)
# ----------------------------------------------------------------------
def collect(repeats: int = 3) -> dict[str, float]:
    """Best-of-``repeats`` throughput metrics, flat name -> units/sec."""
    import time

    def best_rate(fn, args, work_units: int) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn(*args)
            best = min(best, time.perf_counter() - start)
        return work_units / best

    draws = 50_000
    metrics: dict[str, float] = {}
    for kind in PROCESS_KINDS:
        metrics[f"{kind}_scalar_arrivals_per_sec"] = best_rate(
            draw_scalar, (kind, draws), draws
        )
        metrics[f"{kind}_compiled_arrivals_per_sec"] = best_rate(
            draw_compiled, (kind, draws), draws
        )
        emitted = emit_scalar(kind)
        metrics[f"{kind}_scalar_events_per_sec"] = best_rate(
            emit_scalar, (kind,), emitted
        )
        metrics[f"{kind}_compiled_events_per_sec"] = best_rate(
            emit_compiled, (kind,), emitted
        )
    return metrics


def main(argv: list[str] | None = None) -> int:
    import argparse
    import json
    from pathlib import Path

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    metrics = collect(args.repeats)
    header = (
        f"{'process':>8} {'scalar gap/s':>14} {'block gap/s':>14} "
        f"{'x':>6} {'scalar ev/s':>13} {'cursor ev/s':>13} {'x':>6}"
    )
    print(header)
    print("-" * len(header))
    for kind in PROCESS_KINDS:
        sg = metrics[f"{kind}_scalar_arrivals_per_sec"]
        cg = metrics[f"{kind}_compiled_arrivals_per_sec"]
        se = metrics[f"{kind}_scalar_events_per_sec"]
        ce = metrics[f"{kind}_compiled_events_per_sec"]
        print(
            f"{kind:>8} {sg:>14,.0f} {cg:>14,.0f} {cg / sg:>6.2f} "
            f"{se:>13,.0f} {ce:>13,.0f} {ce / se:>6.2f}"
        )
    if args.out is not None:
        args.out.write_text(
            json.dumps({k: round(v, 1) for k, v in metrics.items()}, indent=2)
            + "\n"
        )
        print(f"written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
