"""Record kernel and sweep throughput to a dated JSON file.

Runs the headline microbenchmarks (no pytest-benchmark machinery, just
best-of-N wall-clock timing) and dumps the numbers to
``BENCH_<YYYY-MM-DD>.json`` in the repository root, so successive
optimization PRs leave a comparable paper trail:

    PYTHONPATH=src python benchmarks/record_bench.py
    PYTHONPATH=src python benchmarks/record_bench.py --out custom.json

Recorded metrics (events or packets per second, higher is better):

* ``kernel_events_per_sec``       -- plain tuple-heap event chain
* ``cancellable_events_per_sec``  -- handle-based (cancellable) chain
* ``trace_replay_packets_per_sec`` -- TraceSource -> WTP link replay
* ``sweep_runs_per_sec``          -- SweepRunner over a small single-hop
  sweep (serial, cache disabled): runner dispatch overhead + simulation
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_engine import (  # noqa: E402
    forward_packets,
    replay_trace,
    run_cancellable_events,
    run_kernel_events,
    run_small_sweep,
)


def best_rate(fn, arg, work_units: int, repeats: int = 3) -> float:
    """Best-of-``repeats`` throughput of ``fn(arg)`` in units/second."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(arg)
        best = min(best, time.perf_counter() - start)
    return work_units / best


def collect(repeats: int) -> dict:
    kernel_events = 100_000
    trace_packets = 50_000
    sweep_runs = 4
    metrics = {
        "kernel_events_per_sec": best_rate(
            run_kernel_events, kernel_events, kernel_events, repeats
        ),
        "cancellable_events_per_sec": best_rate(
            run_cancellable_events, kernel_events, kernel_events, repeats
        ),
        "trace_replay_packets_per_sec": best_rate(
            replay_trace, trace_packets, trace_packets, repeats
        ),
        "wtp_forwarded_packets_per_sec": best_rate(
            forward_packets, "wtp", forward_packets("wtp"), repeats
        ),
        "sweep_runs_per_sec": best_rate(
            run_small_sweep, 1, sweep_runs, repeats
        ),
    }
    return {
        "date": datetime.date.today().isoformat(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": repeats,
        "metrics": {k: round(v, 1) for k, v in metrics.items()},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output path (default: BENCH_<date>.json in the repo root)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per metric"
    )
    args = parser.parse_args(argv)

    record = collect(args.repeats)
    out = args.out
    if out is None:
        out = REPO_ROOT / f"BENCH_{record['date']}.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    for name, value in record["metrics"].items():
        print(f"{name:>32}: {value:>14,.1f}")
    print(f"written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
