"""Record kernel and sweep throughput to a dated JSON file.

Runs the headline benchmarks (no pytest-benchmark machinery, just
best-of-N wall-clock timing) and dumps the numbers to
``BENCH_<YYYY-MM-DD>.json`` in the repository root, so successive
optimization PRs leave a comparable paper trail:

    PYTHONPATH=src python benchmarks/record_bench.py
    PYTHONPATH=src python benchmarks/record_bench.py --baseline BENCH_old.json

Recorded metrics (events or packets per second, higher is better):

* ``kernel_events_per_sec``       -- plain tuple-heap event chain
* ``cancellable_events_per_sec``  -- handle-based (cancellable) chain
* ``trace_replay_packets_per_sec`` -- TraceSource -> WTP link replay
* ``wtp_forwarded_packets_per_sec`` -- single WTP link forwarding in
  the session's packet representation (columnar unless
  ``--object-packets``)
* ``columnar_forwarded_packets_per_sec`` -- the same cell with the
  columnar hot path forced ON; with ``--object-packets`` the two
  metrics form an in-record columnar-vs-object A/B pair (mirroring the
  scalar-vs-compiled arrival pairs from :mod:`bench_sources`)
* ``multihop_packets_per_sec``    -- Table 1 smoke cell (4 hops,
  rho=0.85, WTP, compiled arrivals): the chain-fused drain kernel's
  guarded workload
* ``multihop_drr_packets_per_sec`` -- the same cell under DRR: the
  generated drain bodies' guarded workload (a non-stock scheduler
  only chain-fuses through :mod:`repro.schedulers.draingen`)
* ``fanin_packets_per_sec``       -- fan-in merge cell (two upstreams
  + merge-point cross traffic): the chain walk's upstream fan-in
  fixpoint's guarded workload
* ``sweep_runs_per_sec``          -- SweepRunner over a small single-hop
  sweep (serial, cache disabled): runner dispatch overhead + simulation
* ``sweep_cells_per_sec``         -- the 8-cell city bench grid through
  the sharded tier (ShardRunner, 4 jobs, traces compiled once and
  shared zero-copy)
* ``sweep_runner_cells_per_sec``  -- the same grid through SweepRunner
  per-cell dispatch (every worker compiles its own traces)
* ``sweep_shard_speedup``         -- sharded / per-cell cells per second
* ``sweep10k_cells_per_sec``      -- 10^4 tiny cells streamed through
  the ShardRunner consume path (one shot, not best-of-N)
* ``hybrid_horizon_speedup``      -- pure-packet / hybrid wall-clock on
  the long-horizon city cell from :mod:`bench_hybrid` (300 flows over
  600 s, shared precompiled traces, one shot each)
* ``hybrid_ddp_fidelity_error``   -- mean relative per-class mean-delay
  error of that hybrid run against the pure run (lower is better;
  gated absolutely against the epsilon knob, excluded from
  ``vs_baseline``)
* ``hybrid_multihop_speedup``     -- the same pure/hybrid comparison on
  the network-wide headline cell (a 4-branch star with 3 hops per
  branch, 200 flows over 120 s): per-link fluid segments with Lindley
  departure propagation across every hop of the DAG
* ``hybrid_multihop_ddp_fidelity_error`` -- that multihop run's error
  vs its pure replay (absolute-gated like the single-hub figure); the
  record's ``hybrid_multihop`` detail section carries the full
  comparison plus the all-scheduler epsilon=0 bit-identity verdict
* ``<process>_{scalar,compiled}_{arrivals,events}_per_sec`` -- source
  microbenchmarks from :mod:`bench_sources`

A separate ``sweep_streaming`` section records the coordinator's peak
RSS at 10^3 and 10^4 streamed cells (results go to shard files and
stream back one record at a time, so the two figures must stay within
a few tens of MB of each other -- that flatness IS the O(shard) memory
claim, checked by eye in the record and by gate in
:mod:`check_regression`).

``--object-packets`` flips the module-wide packet-representation
default (``repro.sim.link.COLUMNAR_DEFAULT``) to evented ``Packet``
objects for every benchmark that builds links internally (multihop,
sweeps, figure 1), so a pair of runs with and without the flag is a
whole-suite columnar A/B.

plus the end-to-end figure-1 smoke sweep, in seconds (lower is better):

* ``figure1_smoke_compiled_sec`` / ``figure1_smoke_scalar_sec`` -- the
  same 14-cell sweep with block-drawn trace compilation on and off
* ``figure1_smoke_speedup``      -- scalar / compiled

``--baseline`` embeds a ``vs_baseline`` map of per-metric improvement
factors against an earlier record (``*_sec`` metrics are inverted so
every factor reads "x times faster").
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import bench_hybrid  # noqa: E402
import bench_sources  # noqa: E402
import bench_sweep  # noqa: E402
from bench_engine import (  # noqa: E402
    forward_packets,
    replay_trace,
    run_cancellable_events,
    run_fanin_cell,
    run_kernel_events,
    run_multihop_cell,
    run_small_sweep,
)


def best_rate(fn, arg, work_units: int, repeats: int = 3) -> float:
    """Best-of-``repeats`` throughput of ``fn(arg)`` in units/second."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(arg)
        best = min(best, time.perf_counter() - start)
    return work_units / best


def figure1_smoke_seconds(compiled: bool, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall-clock of the 14-cell figure-1 smoke sweep."""
    from repro.experiments.figure1 import FigureOneConfig, run_figure1

    best = float("inf")
    for _ in range(repeats):
        config = FigureOneConfig(
            check_feasibility=False, compiled_arrivals=compiled
        ).scaled(0.05)
        start = time.perf_counter()
        run_figure1(config)
        best = min(best, time.perf_counter() - start)
    return best


def collect(repeats: int, object_packets: bool = False) -> dict:
    import repro.sim.link as link_mod

    link_mod.COLUMNAR_DEFAULT = not object_packets

    def forward_columnar(name: str) -> int:
        return forward_packets(name, columnar=True)

    kernel_events = 100_000
    trace_packets = 50_000
    sweep_runs = 4
    metrics = {
        "kernel_events_per_sec": best_rate(
            run_kernel_events, kernel_events, kernel_events, repeats
        ),
        "cancellable_events_per_sec": best_rate(
            run_cancellable_events, kernel_events, kernel_events, repeats
        ),
        "trace_replay_packets_per_sec": best_rate(
            replay_trace, trace_packets, trace_packets, repeats
        ),
        "wtp_forwarded_packets_per_sec": best_rate(
            forward_packets, "wtp", forward_packets("wtp"), repeats
        ),
        "columnar_forwarded_packets_per_sec": best_rate(
            forward_columnar, "wtp", forward_columnar("wtp"), repeats
        ),
        "multihop_packets_per_sec": best_rate(
            run_multihop_cell, "wtp", run_multihop_cell("wtp"), repeats
        ),
        "multihop_drr_packets_per_sec": best_rate(
            run_multihop_cell, "drr", run_multihop_cell("drr"), repeats
        ),
        "fanin_packets_per_sec": best_rate(
            run_fanin_cell, "wtp", run_fanin_cell("wtp"), repeats
        ),
        "sweep_runs_per_sec": best_rate(
            run_small_sweep, 1, sweep_runs, repeats
        ),
    }
    grid_cells = len(list(bench_sweep.BENCH_GRID.cells()))
    metrics["sweep_cells_per_sec"] = best_rate(
        bench_sweep.run_city_shard, bench_sweep.BENCH_JOBS, grid_cells, repeats
    )
    metrics["sweep_runner_cells_per_sec"] = best_rate(
        bench_sweep.run_city_sweep, bench_sweep.BENCH_JOBS, grid_cells, repeats
    )
    metrics["sweep_shard_speedup"] = (
        metrics["sweep_cells_per_sec"] / metrics["sweep_runner_cells_per_sec"]
    )
    # Streaming-store scaling: one shot each (a 10^4-cell sweep is too
    # long to best-of-N) -- the point is the RSS pair, not the rate.
    sweep_streaming = {}
    for cells in (1_000, 10_000):
        start = time.perf_counter()
        count, rss_mb = bench_sweep.run_tiny_sweep(cells)
        elapsed = time.perf_counter() - start
        sweep_streaming[str(cells)] = {
            "cells_per_sec": round(count / elapsed, 1),
            "coordinator_peak_rss_mb": round(rss_mb, 1),
        }
    metrics["sweep10k_cells_per_sec"] = sweep_streaming["10000"][
        "cells_per_sec"
    ]
    metrics.update(bench_sources.collect(repeats))
    compiled_sec = figure1_smoke_seconds(True, repeats)
    scalar_sec = figure1_smoke_seconds(False, repeats)
    metrics["figure1_smoke_compiled_sec"] = compiled_sec
    metrics["figure1_smoke_scalar_sec"] = scalar_sec
    metrics["figure1_smoke_speedup"] = scalar_sec / compiled_sec
    # Generated-body cost check: single-hop vs 4-hop multihop packet
    # rates for the non-stock schedulers whose fused bodies come from
    # the code generator.  The recorded ratio is single/multihop --
    # multihop per-packet cost stays within ~1.5x of single-hop when
    # the generated chain-fused drains engage.
    multihop_vs_single = {}
    for name in ("bpr", "drr", "wfq"):
        single = best_rate(
            forward_packets, name, forward_packets(name), repeats
        )
        multihop = best_rate(
            run_multihop_cell, name, run_multihop_cell(name), repeats
        )
        multihop_vs_single[name] = {
            "single_hop_packets_per_sec": round(single, 1),
            "multihop_packets_per_sec": round(multihop, 1),
            "single_over_multihop": round(single / multihop, 4),
        }
    # Hybrid fluid/packet engine: one shot (the pure-packet side of the
    # long-horizon cell takes tens of seconds).  The detail section
    # records the full comparison including the epsilon=0 bit-identity
    # verdict -- the planner contract the differential harness pins.
    hybrid = bench_hybrid.collect()
    metrics.update(hybrid["metrics"])
    return {
        "date": datetime.date.today().isoformat(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": repeats,
        "packet_representation": "object" if object_packets else "columnar",
        "metrics": {k: round(v, 4) for k, v in metrics.items()},
        "multihop_vs_single_hop": multihop_vs_single,
        "sweep_streaming": sweep_streaming,
        "hybrid": hybrid["detail"],
        "hybrid_multihop": hybrid["multihop_detail"],
    }


#: Metrics where lower is better on an *absolute* scale (error rates):
#: a ratio against an older record reads backwards, so they stay out
#: of ``vs_baseline``.
ABSOLUTE_METRICS = (
    "hybrid_ddp_fidelity_error",
    "hybrid_multihop_ddp_fidelity_error",
)


def improvement(name: str, new: float, old: float) -> float:
    """Per-metric speedup factor; duration metrics invert (lower wins)."""
    if old <= 0 or new <= 0:
        return float("nan")
    is_duration = name.endswith("_sec") and not name.endswith("_per_sec")
    return old / new if is_duration else new / old


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output path (default: BENCH_<date>.json in the repo root)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per metric"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="earlier BENCH_*.json to embed per-metric speedups against",
    )
    parser.add_argument(
        "--object-packets",
        action="store_true",
        help=(
            "run with evented Packet objects instead of the columnar "
            "hot path (flips repro.sim.link.COLUMNAR_DEFAULT for the "
            "whole suite; the columnar_* metric still forces columnar, "
            "giving an in-record A/B pair)"
        ),
    )
    args = parser.parse_args(argv)
    if args.baseline is not None and not args.baseline.exists():
        parser.error(f"baseline not found: {args.baseline}")

    record = collect(args.repeats, object_packets=args.object_packets)
    if args.baseline is not None:
        old = json.loads(args.baseline.read_text())["metrics"]
        record["baseline"] = args.baseline.name
        record["vs_baseline"] = {
            name: round(improvement(name, value, old[name]), 3)
            for name, value in record["metrics"].items()
            if name in old and name not in ABSOLUTE_METRICS
        }
    out = args.out
    if out is None:
        out = REPO_ROOT / f"BENCH_{record['date']}.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    for name, value in record["metrics"].items():
        ratio = record.get("vs_baseline", {}).get(name)
        suffix = f"  ({ratio:.2f}x vs baseline)" if ratio is not None else ""
        print(f"{name:>36}: {value:>14,.1f}{suffix}")
    print(f"written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
