"""Hybrid fluid/packet engine benchmarks: long-horizon speedup + fidelity.

Two cells, both city star-of-chains workloads replayed over one shared
compiled trace set (so neither path is charged for compilation -- the
sharded-tier deployment shape, where traces are compiled once and
published):

* the **headline cell** (`BENCH_CELL`, 300 flows over 600 s) is the
  long-horizon steady workload the hybrid engine exists for; `collect()`
  runs it once pure-packet and once hybrid (one shot each -- a ~30 s
  pure run is too long to best-of-N) and reports
  ``hybrid_horizon_speedup`` plus ``hybrid_ddp_fidelity_error`` (the
  mean relative per-class mean-delay error of the hybrid run against
  the pure run, which must stay within the epsilon knob);
* the **smoke cell** (`SMOKE_CELL`, 120 flows over 100 s) is the same
  comparison sized for CI (`smoke()`, a few seconds end to end), plus
  an ``epsilon=0`` run on a tiny cell that must reproduce the pure
  path *bit-identically* (`==` on every per-class mean and the
  departure count -- the planner contract, also pinned by
  ``tests/differential.py``);
* the **multihop cell** (`MULTIHOP_CELL`, a 4-branch star with 3 hops
  per branch, 200 flows over 120 s -- the network-wide engine's
  headline) reports ``hybrid_multihop_speedup`` and
  ``hybrid_multihop_ddp_fidelity_error``: per-link fluid segments with
  Lindley departure propagation across every hop, vs a pure evented
  replay of the whole topology.  `MULTIHOP_SMOKE_CELL` is the CI-sized
  version, and `multihop_epsilon_zero_identity()` re-runs the tiny
  multihop `MULTIHOP_IDENTITY_CELL` at ``epsilon=0`` for **every**
  registered scheduler (all 12, fluid map or not) -- each must be
  bit-identical to its pure run.

``python benchmarks/bench_hybrid.py`` runs both smoke pairs and exits
non-zero when fidelity exceeds the epsilon knob or any epsilon=0 run
is not bit-identical -- the `make hybrid-smoke` / CI gate.
"""

from __future__ import annotations

import dataclasses
import gc
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.scenarios.city import CityScenarioConfig, compile_city_traces  # noqa: E402
from repro.scenarios.generators import build_city_topology  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402
from repro.sim.hybrid import HybridConfig, run_hybrid_city  # noqa: E402
from repro.sim.monitor import DelayMonitor  # noqa: E402
from repro.traffic.trace import TraceSource  # noqa: E402

#: Error-bound knob for every hybrid run here; the fidelity gate.
BENCH_EPSILON = 0.05

#: The headline long-horizon cell: steady city traffic where fluid
#: fast-forward should cover nearly the whole timeline.  Sized so the
#: pure-packet replay takes tens of seconds -- long enough that the
#: hybrid engine's fixed costs (segment planning + the forced packet
#: prefix) amortize past the 10x target.
BENCH_CELL = CityScenarioConfig(
    flows=300,
    horizon=600_000.0,
    warmup=2_000.0,
    utilization=0.9,
    seed=3,
)

#: CI-sized version of the same comparison (a few seconds total).
SMOKE_CELL = CityScenarioConfig(
    flows=120,
    horizon=100_000.0,
    warmup=2_000.0,
    utilization=0.9,
    seed=3,
)

#: Tiny cell for the epsilon=0 bit-identity check (sub-second).
IDENTITY_CELL = CityScenarioConfig(
    flows=48,
    horizon=6_000.0,
    warmup=400.0,
    seed=5,
)

#: The network-wide headline: a >= 3-hop star (every packet crosses
#: three chain hops before the hub), the same cell the CLI's
#: ``--fidelity-curve`` sweeps.  Fluid fast-forward here exercises the
#: per-link segment planner and the upstream->downstream departure
#: propagation on every link of the DAG.
MULTIHOP_CELL = CityScenarioConfig(
    topology="star_of_chains",
    branches=4,
    hops_per_branch=3,
    flows=200,
    horizon=120_000.0,
    warmup=2_000.0,
    seed=7,
)

#: CI-sized multihop comparison (a few seconds total).
MULTIHOP_SMOKE_CELL = CityScenarioConfig(
    topology="star_of_chains",
    branches=2,
    hops_per_branch=3,
    flows=120,
    horizon=60_000.0,
    warmup=2_000.0,
    seed=7,
)

#: Tiny multihop cell for the all-scheduler epsilon=0 identity sweep
#: (the same shape the differential harness pins per scheduler).
MULTIHOP_IDENTITY_CELL = CityScenarioConfig(
    topology="star_of_chains",
    branches=2,
    hops_per_branch=2,
    flows=32,
    horizon=6_000.0,
    warmup=400.0,
    seed=5,
)


def run_pure(config: CityScenarioConfig, traces) -> tuple[list[float], int]:
    """Pure packet replay over precompiled traces; (means, departures)."""
    sim = Simulator()
    entries, _, hub = build_city_topology(sim, config)
    monitor = DelayMonitor(config.num_classes, warmup=config.warmup)
    hub.add_monitor(monitor)
    for branch, trace in enumerate(traces):
        if len(trace):
            TraceSource(
                sim, entries[branch], trace,
                first_packet_id=branch * 10_000_000,
            ).start()
    sim.run(until=config.horizon)
    return monitor.mean_delays(), hub.departures


def run_hybrid(config: CityScenarioConfig, traces, epsilon: float):
    """Hybrid replay of the same cell; returns the finished controller."""
    hybrid_config = dataclasses.replace(
        config, hybrid=HybridConfig(epsilon=epsilon)
    )
    return run_hybrid_city(hybrid_config, traces)


def fidelity_error(pure_means, hybrid_means) -> float:
    """Mean relative per-class mean-delay error, hybrid vs pure."""
    errors = [
        abs(hybrid - pure) / pure
        for pure, hybrid in zip(pure_means, hybrid_means)
        if pure > 0
    ]
    return sum(errors) / len(errors) if errors else float("nan")


def _compare_cell(config: CityScenarioConfig, epsilon: float) -> dict:
    """Run one cell pure and hybrid over shared traces; timing + error.

    A full ``gc.collect()`` precedes each timed side: the pure replay
    leaves millions of dead packet objects behind, and without the
    sweep the hybrid side pays that garbage off in its own timing
    (~2.5x inflation on the long-horizon cell).
    """
    traces = compile_city_traces(config)
    gc.collect()
    start = time.perf_counter()
    pure_means, pure_departures = run_pure(config, traces)
    pure_sec = time.perf_counter() - start
    gc.collect()
    start = time.perf_counter()
    controller = run_hybrid(config, traces, epsilon)
    hybrid_sec = time.perf_counter() - start
    hybrid_means = controller.monitor.mean_delays()
    summary = controller.summary()
    return {
        "flows": config.flows,
        "horizon_ms": config.horizon,
        "utilization": config.utilization,
        "epsilon": epsilon,
        "pure_sec": round(pure_sec, 4),
        "hybrid_sec": round(hybrid_sec, 4),
        "speedup": round(pure_sec / hybrid_sec, 4),
        "fidelity_error": round(fidelity_error(pure_means, hybrid_means), 6),
        "fluid_time_fraction": round(summary["fluid_time_fraction"], 4),
        "segments": summary["segments"],
        "pure_mean_delays": [round(d, 6) for d in pure_means],
        "hybrid_mean_delays": [round(d, 6) for d in hybrid_means],
        "pure_departures": pure_departures,
        "hybrid_packet_departures": summary["packet_departures"],
    }


def epsilon_zero_identity() -> bool:
    """epsilon=0 must reproduce the pure path bit-for-bit (``==``)."""
    traces = compile_city_traces(IDENTITY_CELL)
    pure_means, pure_departures = run_pure(IDENTITY_CELL, traces)
    controller = run_hybrid(IDENTITY_CELL, traces, 0.0)
    return (
        controller.monitor.mean_delays() == pure_means
        and controller.packet_departures == pure_departures
    )


def multihop_epsilon_zero_identity() -> list[str]:
    """epsilon=0 on the tiny multihop cell for EVERY registry scheduler.

    Returns the (hopefully empty) list of scheduler names whose hybrid
    run was not bit-identical to the pure replay.  Traces depend only
    on the traffic geometry, so one compiled set serves all 12 runs.
    """
    from repro.schedulers.registry import available_schedulers

    traces = compile_city_traces(MULTIHOP_IDENTITY_CELL)
    broken: list[str] = []
    for name in available_schedulers():
        config = dataclasses.replace(MULTIHOP_IDENTITY_CELL, scheduler=name)
        pure_means, pure_departures = run_pure(config, traces)
        controller = run_hybrid(config, traces, 0.0)
        if not (
            controller.monitor.mean_delays() == pure_means
            and controller.packet_departures == pure_departures
        ):
            broken.append(name)
    return broken


def collect() -> dict:
    """Headline record: one-shot long-horizon speedup + fidelity.

    Returns ``{"metrics": {...}, "detail": {...}}`` -- the metrics dict
    carries ``hybrid_horizon_speedup`` and ``hybrid_ddp_fidelity_error``
    keyed for BENCH_*.json, the detail dict the full comparison
    including the epsilon=0 bit-identity verdict.
    """
    detail = _compare_cell(BENCH_CELL, BENCH_EPSILON)
    detail["epsilon0_bit_identical"] = epsilon_zero_identity()
    multihop = _compare_cell(MULTIHOP_CELL, BENCH_EPSILON)
    broken = multihop_epsilon_zero_identity()
    multihop["eps0_broken_schedulers"] = broken
    multihop["epsilon0_bit_identical_all_schedulers"] = not broken
    return {
        "metrics": {
            "hybrid_horizon_speedup": detail["speedup"],
            "hybrid_ddp_fidelity_error": detail["fidelity_error"],
            "hybrid_multihop_speedup": multihop["speedup"],
            "hybrid_multihop_ddp_fidelity_error": multihop["fidelity_error"],
        },
        "detail": detail,
        "multihop_detail": multihop,
    }


def smoke() -> dict:
    """CI-sized comparison: fidelity + speedup on the smoke cell, plus
    the epsilon=0 bit-identity verdict."""
    detail = _compare_cell(SMOKE_CELL, BENCH_EPSILON)
    detail["epsilon0_bit_identical"] = epsilon_zero_identity()
    return detail


def multihop_smoke() -> dict:
    """CI-sized multihop comparison plus the all-scheduler epsilon=0
    identity sweep (the network-wide planner contract)."""
    detail = _compare_cell(MULTIHOP_SMOKE_CELL, BENCH_EPSILON)
    broken = multihop_epsilon_zero_identity()
    detail["eps0_broken_schedulers"] = broken
    detail["epsilon0_bit_identical_all_schedulers"] = not broken
    return detail


def main() -> int:
    detail = smoke()
    print(
        f"hybrid smoke cell: {detail['flows']} flows over "
        f"{detail['horizon_ms']:,.0f} ms at rho={detail['utilization']}"
    )
    print(
        f"  pure {detail['pure_sec']:.2f}s vs hybrid "
        f"{detail['hybrid_sec']:.2f}s -> {detail['speedup']:.2f}x "
        f"(fluid fraction {detail['fluid_time_fraction']:.2f}, "
        f"{detail['segments']} segments)"
    )
    print(
        f"  DDP fidelity error {detail['fidelity_error']:.4f} "
        f"(epsilon {detail['epsilon']})"
    )
    print(f"  epsilon=0 bit-identical: {detail['epsilon0_bit_identical']}")
    failed = False
    if detail["fidelity_error"] > detail["epsilon"]:
        failed = True
        print(
            f"::error::hybrid fidelity gate: error "
            f"{detail['fidelity_error']:.4f} exceeds epsilon "
            f"{detail['epsilon']} -- the fluid segments are drifting "
            "from the packet-level DDP"
        )
    if not detail["epsilon0_bit_identical"]:
        failed = True
        print(
            "::error::hybrid epsilon=0 run is not bit-identical to the "
            "pure packet path -- the planner's pure-packet contract broke"
        )

    multihop = multihop_smoke()
    print(
        f"hybrid multihop smoke cell: {multihop['flows']} flows over "
        f"{multihop['horizon_ms']:,.0f} ms (2 branches x 3 hops) at "
        f"rho={multihop['utilization']}"
    )
    print(
        f"  pure {multihop['pure_sec']:.2f}s vs hybrid "
        f"{multihop['hybrid_sec']:.2f}s -> {multihop['speedup']:.2f}x "
        f"(fluid fraction {multihop['fluid_time_fraction']:.2f}, "
        f"{multihop['segments']} segments)"
    )
    print(
        f"  DDP fidelity error {multihop['fidelity_error']:.4f} "
        f"(epsilon {multihop['epsilon']})"
    )
    print(
        "  epsilon=0 bit-identical for all schedulers: "
        f"{multihop['epsilon0_bit_identical_all_schedulers']}"
    )
    if multihop["fidelity_error"] > multihop["epsilon"]:
        failed = True
        print(
            f"::error::hybrid multihop fidelity gate: error "
            f"{multihop['fidelity_error']:.4f} exceeds epsilon "
            f"{multihop['epsilon']} -- the per-link fluid segments are "
            "drifting from the packet-level DDP"
        )
    if not multihop["epsilon0_bit_identical_all_schedulers"]:
        failed = True
        print(
            "::error::hybrid multihop epsilon=0 run is not bit-identical "
            "to the pure packet path for: "
            + ", ".join(multihop["eps0_broken_schedulers"])
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
