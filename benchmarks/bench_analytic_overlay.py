"""Analytic overlay bench: simulator fidelity + the undershoot, in
closed form.

No single paper figure corresponds to this bench; it is the analytic
companion to Figure 1 that the paper says it lacked tools for.  Checks:

* the event-driven WTP simulator matches Kleinrock's TDP solution to a
  few percent at every load and class (fidelity), and
* the Kleinrock-vs-ideal gap shrinks monotonically with load -- the
  moderate-load undershoot of Figure 1, derived rather than simulated.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.analytic_overlay import format_overlay, run_analytic_overlay

from _helpers import banner


def test_analytic_overlay(benchmark):
    rows = benchmark.pedantic(
        lambda: run_analytic_overlay(horizon=2.5e5),
        rounds=1, iterations=1,
    )
    print(banner("Analytic overlay (WTP sim vs Kleinrock vs Eq 6 ideal)"))
    print(format_overlay(rows))

    # Fidelity: simulation matches the closed form everywhere.
    worst_sim_gap = max(row.simulation_gap for row in rows)
    print(f"worst simulator-vs-theory gap: {worst_sim_gap:.1%}")
    assert worst_sim_gap < 0.08

    # The undershoot, analytically: mean model gap decreases with rho.
    by_rho = {}
    for row in rows:
        by_rho.setdefault(row.utilization, []).append(row.model_gap)
    means = {rho: float(np.mean(gaps)) for rho, gaps in by_rho.items()}
    ordered = [means[rho] for rho in sorted(means)]
    assert all(a > b for a, b in zip(ordered, ordered[1:]))
    # At rho = 0.7 the gap is substantial (the paper's "1.5 vs 2").
    assert means[0.7] > 0.15
