"""Table 1: end-to-end R_D over the (F, R_u) x (K, rho) grid.

Paper reference (ideal 2.00):

                F=10,Ru=50  F=10,Ru=200  F=100,Ru=50  F=100,Ru=200
  K=4, rho=85%        2.3          2.2          2.2           2.1
  K=4, rho=95%        2.1          2.1          2.1           2.0
  K=8, rho=85%        2.0          2.0          2.0           2.0
  K=8, rho=95%        2.0          2.0          2.0           2.0

and *no* inconsistent user experiments in any run.  The benchmark runs
a reduced grid (fewer experiments, shorter warm-up) and checks the two
robust shapes: R_D near 2 everywhere, and (almost) no inconsistent
experiments.  The full grid at paper scale: ``repro-pdd table1``.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.table1 import TableOneConfig, format_table1, run_table1

from _helpers import banner

PAPER_RD = {
    (4, 0.85, 10, 50.0): 2.3, (4, 0.85, 10, 200.0): 2.2,
    (4, 0.85, 100, 50.0): 2.2, (4, 0.85, 100, 200.0): 2.1,
    (4, 0.95, 10, 50.0): 2.1, (4, 0.95, 10, 200.0): 2.1,
    (4, 0.95, 100, 50.0): 2.1, (4, 0.95, 100, 200.0): 2.0,
    (8, 0.85, 10, 50.0): 2.0, (8, 0.85, 10, 200.0): 2.0,
    (8, 0.85, 100, 50.0): 2.0, (8, 0.85, 100, 200.0): 2.0,
    (8, 0.95, 10, 50.0): 2.0, (8, 0.95, 10, 200.0): 2.0,
    (8, 0.95, 100, 50.0): 2.0, (8, 0.95, 100, 200.0): 2.0,
}

BENCH_CONFIG = TableOneConfig(
    flow_packets_values=(10, 100),
    flow_rates_kbps=(50.0, 200.0),
    experiments=8,
    warmup=6_000.0,
)


def _run():
    return run_table1(BENCH_CONFIG)


def test_table1(benchmark):
    cells = benchmark.pedantic(_run, rounds=1, iterations=1)
    print(banner("Table 1 (end-to-end R_D; ideal 2.00)"))
    print(format_table1(cells))
    print("paper reference: 2.0-2.3 everywhere, tending to 2.0 with "
          "more hops / higher load; zero inconsistent experiments")

    rds = []
    for cell in cells:
        key = (cell.hops, cell.utilization, cell.flow_packets,
               cell.flow_rate_kbps)
        paper = PAPER_RD[key]
        print(f"  K={cell.hops} rho={cell.utilization:g} F={cell.flow_packets} "
              f"Ru={cell.flow_rate_kbps:g}: paper {paper:.2f} vs "
              f"measured {cell.rd:.2f} ({cell.inconsistent} inconsistent)")
        rds.append(cell.rd)
    # Shape 1: every cell's R_D is in the paper's band around 2.
    assert all(1.5 < rd < 2.8 for rd in rds)
    assert abs(float(np.mean(rds)) - 2.0) < 0.3
    # Shape 2: inconsistent experiments are (near-)absent.  The paper
    # reports exactly zero at full scale (M=100, 100 s warm-up); the
    # reduced warm-up here occasionally leaves one borderline cell.
    total_experiments = sum(len(c.result.comparisons) for c in cells)
    total_inconsistent = sum(c.inconsistent for c in cells)
    assert total_inconsistent <= 0.05 * total_experiments
