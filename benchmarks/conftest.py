"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures at a
reduced (but shape-preserving) scale, prints the measured rows next to
the paper's reference numbers, and asserts the qualitative shape.  Use
``pytest benchmarks/ --benchmark-only -s`` to see the tables.

The full-scale versions (paper run lengths and seed counts) are
available through the CLI: ``repro-pdd figure1`` etc.
"""

from __future__ import annotations


def banner(title: str) -> str:
    rule = "=" * len(title)
    return f"\n{rule}\n{title}\n{rule}"
