"""Formatting helpers shared by the benchmark modules."""

from __future__ import annotations


def banner(title: str) -> str:
    """Underlined section header for the printed paper-vs-measured rows."""
    rule = "=" * len(title)
    return f"\n{rule}\n{title}\n{rule}"
