"""Figures 4 and 5: microscopic views of BPR and WTP on identical
arrivals (3 classes, s = 1, 2, 4, rho = 0.95).

Paper reference: BPR's per-packet delays (view II) show sawtooth ramps
that collapse when new arrivals refill a draining queue; WTP tracks the
proportional bands smoothly.  Delay magnitudes: low class a few hundred
p-units, high class a few tens, in overloaded windows.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figure45 import (
    MicroscopicConfig,
    format_figure45,
    run_figure45,
)

from _helpers import banner

BENCH_CONFIG = MicroscopicConfig(horizon=3e5, warmup=1.5e4)


def _run():
    return run_figure45(BENCH_CONFIG)


def test_figure45(benchmark):
    views = benchmark.pedantic(_run, rounds=1, iterations=1)
    print(banner("Figures 4-5 (microscopic views, same arrivals)"))
    print(format_figure45(views))
    print("paper reference: BPR sawtooth/noisy per-packet delays; WTP "
          "smooth proportional bands; class delays ordered 1 > 2 > 3")

    bpr, wtp = views["bpr"], views["wtp"]
    # Shape 1: the BPR sawtooth -- larger normalized packet-to-packet
    # delay jumps than WTP for the same arrivals.
    assert np.nanmean(bpr.sawtooth_scores()) > np.nanmean(wtp.sawtooth_scores())
    # Shape 2: interval-average delays (view I) keep the class order.
    for view in views.values():
        means = np.nanmean(view.interval_means, axis=0)
        assert means[0] > means[1] > means[2]
    # Shape 3: both views hold data for every class.
    for view in views.values():
        assert all(len(s) > 10 for s in view.packet_samples)
