"""Figure 3: percentiles of the interval metric R_D vs timescale tau.

Paper reference (SDP ratio 2, rho = 0.95, target R_D = 2.0): at
tau = 10000 p-units both schedulers concentrate near 2.0; at small tau
WTP's 25-75% box already brackets the target while BPR's 5-95% whiskers
are far wider ("spread" behaviour at timescales of hundreds of p-units
or less).
"""

from __future__ import annotations

from repro.experiments.figure3 import (
    FigureThreeConfig,
    format_figure3,
    run_figure3,
)

from _helpers import banner

BENCH_CONFIG = FigureThreeConfig(horizon=6e5, warmup=2e4)


def _run():
    return run_figure3(BENCH_CONFIG)


def test_figure3(benchmark):
    boxes = benchmark.pedantic(_run, rounds=1, iterations=1)
    print(banner("Figure 3 (R_D percentiles per monitoring timescale)"))
    print(format_figure3(boxes))
    print("paper reference: boxes tighten around 2.0 as tau grows; WTP "
          "far tighter than BPR at small tau")

    by_key = {(b.scheduler, b.tau_p_units): b.summary for b in boxes}
    for scheduler in ("wtp", "bpr"):
        small = by_key[(scheduler, 10.0)]
        large = by_key[(scheduler, 10000.0)]
        # Shape 1: distributions tighten with tau.
        assert (large.p95 - large.p5) < (small.p95 - small.p5)
        # Shape 2: at the largest tau the median is near the target.
        assert abs(large.median - 2.0) < 0.4
    # Shape 3: WTP's interquartile range beats BPR's at every tau.
    for tau in BENCH_CONFIG.taus_p_units:
        wtp = by_key[("wtp", tau)]
        bpr = by_key[("bpr", tau)]
        assert (wtp.p75 - wtp.p25) < (bpr.p75 - bpr.p25)
