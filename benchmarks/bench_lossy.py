"""Coupled delay+loss differentiation -- the paper's future-work regime.

No paper table corresponds to this bench (the paper explicitly defers
the coupled problem); it quantifies the two predictions Section 7
makes about it:

* a PLR dropper can hold loss ratios proportional under overload, and
* bounded buffers compress the delay differentiation WTP can deliver
  (short queues starve its waiting-time signal).
"""

from __future__ import annotations

import math

from repro.experiments.lossy import LossyConfig, format_lossy, run_lossy_sweep

from _helpers import banner


def _run(buffer_packets: int):
    config = LossyConfig(
        buffer_packets=buffer_packets, horizon=2e5, warmup=1e4
    )
    return config, run_lossy_sweep(config)


def test_lossy_coupled_differentiation(benchmark):
    (config, points) = benchmark.pedantic(
        _run, args=(100,), rounds=1, iterations=1
    )
    print(banner("Coupled delay + loss differentiation (extension)"))
    print(format_lossy(points, config))

    by_load = {p.offered_load: p for p in points}
    # Below saturation: no loss, delays differentiated.
    assert by_load[0.9].total_drops == 0
    assert all(r > 1.4 for r in by_load[0.9].delay_ratios())
    # Deep overload: loss ratios pinned to the LDP targets.
    overloaded = by_load[1.3]
    assert overloaded.total_drops > 500
    for ratio in overloaded.loss_ratios():
        assert not math.isnan(ratio)
        assert abs(ratio - 2.0) < 0.35
    # Delays stay ordered even while dropping.
    delays = overloaded.mean_delays
    assert delays[0] > delays[1] > delays[2] > delays[3]


def test_small_buffer_compresses_delay_ratios(benchmark):
    (config_small, points_small) = benchmark.pedantic(
        _run, args=(20,), rounds=1, iterations=1
    )
    config_large, points_large = _run(200)
    print(banner("Buffer-size ablation (delay-ratio compression)"))
    print(format_lossy(points_small, config_small))
    print(format_lossy(points_large, config_large))
    small = {p.offered_load: p for p in points_small}[1.3]
    large = {p.offered_load: p for p in points_large}[1.3]
    # Section 7's warning: with small buffers the queues cannot grow
    # enough for WTP to realize the full proportional spread.
    assert sum(small.delay_ratios()) < sum(large.delay_ratios())
